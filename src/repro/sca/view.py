"""Persistent views: materialized SCA summaries, maintained incrementally.

A :class:`PersistentView` owns

* the chronicle-algebra expression χ and its summarization
  (:class:`~repro.sca.summarize.Summary`);
* the materialized relation holding the view's visible rows;
* per-group aggregate accumulators (or per-tuple multiplicities) in a
  B+-tree keyed by the summary key — the O(log |V|) locate step of
  Theorem 4.4;
* its :class:`~repro.algebra.classify.Classification` (language fragment
  and IM class).

The maintenance path (:meth:`apply_event`) runs under the chronicle
no-access guard: computing the χ-delta and folding it into the view can
never read a chronicle store, which is the mechanical content of
Theorems 4.2/4.4.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..algebra.ast import Node
from ..algebra.classify import Classification, IMClass, Language, classify
from ..algebra.delta_engine import propagate
from ..algebra.evaluate import evaluate
from ..complexity.counters import GLOBAL_COUNTERS
from ..core.chronicle import maintenance_guard
from ..core.delta import Delta
from ..errors import ViewError
from ..relational.algebra import Table, group_by as ra_group_by, project as ra_project
from ..relational.relation import Relation
from ..relational.tuples import Row
from ..storage.btree import BPlusTree
from .summarize import GroupBySummary, ProjectSummary, Summary


class PersistentView:
    """A materialized, incrementally maintained SCA view.

    Parameters
    ----------
    name:
        View name (also the name of the materialized relation).
    summary:
        The summarization over a chronicle-algebra expression.
    require_language:
        Optionally insist the expression lies within a fragment
        (e.g. ``Language.CA_JOIN`` for guaranteed IM-log(R) maintenance);
        registration fails otherwise.
    """

    def __init__(
        self,
        name: str,
        summary: Summary,
        require_language: Optional[Language] = None,
        state_index: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.summary = summary
        self.expression: Node = summary.expression
        self.classification: Classification = classify(self.expression)
        if self.classification.language is Language.NOT_CA:
            raise ViewError(
                f"view {name!r} uses operators outside chronicle algebra; "
                f"its maintenance would need chronicle access (Theorem 4.3)"
            )
        if require_language is not None and not (
            self.classification.language <= require_language
        ):
            raise ViewError(
                f"view {name!r} is in {self.classification.language.value}, "
                f"outside the required fragment {require_language.value}"
            )
        self.relation = Relation(name, summary.output_schema)
        # Summary-key → accumulators (grouping) or multiplicity
        # (projection).  A B+-tree by default — the paper's O(log |V|)
        # locate; a unique hash index can be substituted (expected O(1),
        # no ordered scans) via *state_index* — the A1 ablation measures
        # the difference.
        self._state = state_index if state_index is not None else BPlusTree(unique=True)
        self._maintenance_count = 0
        if isinstance(summary, GroupBySummary) and not summary.grouping:
            # A global aggregate always has its single group row (SQL
            # semantics: COUNT over the empty set is 0, not absent).
            states = summary.initial_states()
            self._state.replace((), states)
            self.relation.insert(summary.view_row((), states))

    # -- introspection ---------------------------------------------------------------

    @property
    def schema(self):
        """The view's output schema (no sequencing attribute)."""
        return self.relation.schema

    @property
    def im_class(self) -> IMClass:
        """The view's incremental-maintenance class (Theorem 4.5)."""
        return self.classification.im_class

    @property
    def language(self) -> Language:
        return self.classification.language

    def chronicle_names(self) -> Tuple[str, ...]:
        """Names of the base chronicles the view depends on."""
        return tuple({c.name: None for c in self.expression.chronicles()})

    @property
    def maintenance_count(self) -> int:
        """How many append events this view has processed."""
        return self._maintenance_count

    # -- maintenance ------------------------------------------------------------------

    def apply_event(
        self,
        deltas: Mapping[str, Delta],
        cache: Optional[Dict[int, Delta]] = None,
    ) -> int:
        """Maintain the view for one append event; returns rows folded.

        Runs entirely under the chronicle no-access guard.  *cache* is a
        per-event delta memo shared across views whose expressions share
        subtree objects (supplied by the registry).
        """
        with maintenance_guard():
            delta = propagate(self.expression, deltas, cache=cache)
            folded = self._fold(delta)
        self._maintenance_count += 1
        return folded

    def apply_delta(self, delta: Delta) -> int:
        """Fold one precomputed χ-delta into the view; returns rows folded.

        The compiled-plan path (:mod:`repro.algebra.plan`) computes the
        χ-delta itself — once per shared subexpression per event — and
        hands only the fold step to the view.  The fold runs under the
        chronicle no-access guard, exactly like :meth:`apply_event`.
        """
        with maintenance_guard():
            folded = self._fold(delta)
        self._maintenance_count += 1
        return folded

    def _fold(self, delta: Delta) -> int:
        if delta.is_empty:
            return 0
        if isinstance(self.summary, GroupBySummary):
            return self._fold_groups(delta)
        return self._fold_projection(delta)

    def _fold_groups(self, delta: Delta) -> int:
        summary = self.summary
        assert isinstance(summary, GroupBySummary)
        touched: Dict[Tuple[Any, ...], List[Any]] = {}
        fresh: Dict[Tuple[Any, ...], bool] = {}
        for row in delta.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            key = summary.key_of(row)
            states = touched.get(key)
            if states is None:
                states = self._state.get(key)  # O(log |V|)
                if states is None:
                    states = summary.initial_states()
                    fresh[key] = True
                touched[key] = states
            touched[key] = summary.step_states(states, row)
            GLOBAL_COUNTERS.count("aggregate_step", len(summary.aggregates))
        for key, states in touched.items():
            self._state.replace(key, states)
            row = summary.view_row(key, states)
            if fresh.get(key):
                self.relation.insert(row)
            elif summary.grouping:
                self.relation.replace_key(key, row)
            else:
                # Global aggregate: a single keyless row, replaced wholesale.
                self.relation.clear()
                self.relation.insert(row)
        return len(delta.rows)

    def _fold_projection(self, delta: Delta) -> int:
        summary = self.summary
        assert isinstance(summary, ProjectSummary)
        for row in delta.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            key = summary.key_of(row)
            count = self._state.get(key)  # O(log |V|)
            if count is None:
                self._state.replace(key, 1)
                self.relation.insert(summary.view_row(key))
            else:
                self._state.replace(key, count + 1)
        return len(delta.rows)

    # -- portable state ---------------------------------------------------------------

    def state_export(self) -> List[Tuple[Tuple[Any, ...], Any]]:
        """The view's fold state as portable ``(key, state)`` items.

        For grouping summaries the state is the accumulator list; for
        projections the multiplicity count.  Together with the summary
        definition this is the view's *entire* durable state — the
        visible rows are a pure function of it (``view_row``) — so the
        items are what crosses process boundaries (shard snapshots) and
        what checkpoints persist.
        """
        return [(key, value) for key, value in self._state.items()]

    def state_import(
        self,
        items: Iterable[Tuple[Any, Any]],
        maintenance_count: Optional[int] = None,
    ) -> None:
        """Replace the fold state wholesale; rebuilds the visible rows.

        The inverse of :meth:`state_export`: clears current state and
        regenerates the materialized relation from the imported
        accumulators, so a view rebuilt in a worker process (or restored
        from a checkpoint) is byte-for-byte the view that exported.
        """
        if maintenance_count is not None:
            self._maintenance_count = maintenance_count
        self.relation.clear()
        self._state.clear()
        summary = self.summary
        if isinstance(summary, GroupBySummary):
            for key, states in items:
                key = tuple(key)
                states = list(states)
                self._state.replace(key, states)
                self.relation.insert(summary.view_row(key, states))
            if not summary.grouping and self._state.get(()) is None:
                # Preserve the constructor invariant: a global aggregate
                # always shows its single group row.
                states = summary.initial_states()
                self._state.replace((), states)
                self.relation.insert(summary.view_row((), states))
        else:
            assert isinstance(summary, ProjectSummary)
            for key, count in items:
                key = tuple(key)
                self._state.replace(key, count)
                self.relation.insert(summary.view_row(key))

    def absorb_states(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Merge authoritative per-key states computed elsewhere.

        The parent-side half of process-shard maintenance: a worker
        returns the post-fold state of exactly the keys one window
        touched, and this replaces those keys' accumulators and visible
        rows — the same insert/replace discipline as :meth:`_fold`, so a
        reader under the shard lock sees whole windows or nothing.  Each
        call counts as one maintenance window, mirroring
        :meth:`apply_delta`.
        """
        self._maintenance_count += 1
        summary = self.summary
        if isinstance(summary, GroupBySummary):
            grouping = bool(summary.grouping)
            for key, states in items:
                key = tuple(key)
                states = list(states)
                existing = self._state.get(key)
                self._state.replace(key, states)
                row = summary.view_row(key, states)
                if existing is None:
                    self.relation.insert(row)
                elif grouping:
                    self.relation.replace_key(key, row)
                else:
                    self.relation.clear()
                    self.relation.insert(row)
        else:
            assert isinstance(summary, ProjectSummary)
            for key, count in items:
                key = tuple(key)
                if self._state.get(key) is None:
                    self.relation.insert(summary.view_row(key))
                self._state.replace(key, count)

    def initialize_from_store(self) -> int:
        """Materialize the view from currently stored chronicle history.

        "Each persistent view is materialized when it is initially
        defined" (Section 2.1).  Requires the base chronicles to retain
        the relevant history; views defined before any appends start
        empty.  Returns the number of χ rows folded.
        """
        table = evaluate(self.expression)
        return self._fold(Delta(self.expression.schema, table.rows))

    # -- queries ----------------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """The view's visible rows (HAVING filter applied)."""
        if self.summary.having is None:
            return self.relation.rows()
        return (row for row in self.relation.rows() if self.summary.visible(row))

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        if self.summary.having is None:
            return len(self.relation)
        return sum(1 for _ in self.rows())

    def lookup(self, key: Sequence[Any]) -> Optional[Row]:
        """The view row for one summary key (group key / projected tuple).

        A row hidden by the HAVING filter reads as absent.
        """
        if self.relation.schema.key is None:
            rows = list(self.relation.rows())
            row = rows[0] if rows else None
        else:
            row = self.relation.lookup_key(tuple(key))
        if row is not None and not self.summary.visible(row):
            return None
        return row

    def value(self, key: Sequence[Any], output: str) -> Any:
        """One output attribute of the row at *key* (None when absent)."""
        row = self.lookup(key)
        return None if row is None else row[output]

    def to_table(self) -> Table:
        """Snapshot of the visible rows (for oracle comparisons)."""
        return Table(self.relation.schema, list(self.rows()))

    def __repr__(self) -> str:
        return (
            f"PersistentView({self.name!r}, {len(self.relation)} rows, "
            f"{self.language.value}, {self.im_class.value})"
        )


def evaluate_summary(summary: Summary) -> Table:
    """Oracle: batch-evaluate a summary over the stored chronicles.

    Computes χ with the batch evaluator and applies the summarization
    with the set-semantics relational operators; the result must equal
    the incrementally maintained view (the golden invariant the test
    suite checks).
    """
    table = evaluate(summary.expression)
    if isinstance(summary, ProjectSummary):
        return ra_project(table, list(summary.names))
    assert isinstance(summary, GroupBySummary)
    result = ra_group_by(table, list(summary.grouping), list(summary.aggregates))
    # Rebind to the view's schema (domains may be narrower than the
    # generic group_by result) and apply the HAVING filter.
    rows = [
        row.rebind(summary.output_schema)
        for row in result.rows
        if summary.having is None or summary.having.evaluate(row)
    ]
    return Table(summary.output_schema, rows)
