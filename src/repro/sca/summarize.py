"""Summarization: from chronicles to relations (Definition 4.3).

The summarized chronicle algebra adds exactly two root operations that
eliminate the sequencing attribute of a chronicle-algebra expression χ:

* **projection with the sequencing attribute projected out** —
  :class:`ProjectSummary`.  The persistent view is the *set* of projected
  tuples; a hidden multiplicity count per tuple makes insert-only
  maintenance exact (a tuple appears in the view while its count > 0).
* **grouping without the sequencing attribute** —
  :class:`GroupBySummary`.  The persistent view holds one row per group;
  maintenance keeps the (decomposed) aggregate accumulator per group and
  steps it in O(1) per inserted tuple, after an O(log |V|) locate.

Summaries are pure *specifications*: the stateful machinery lives in
:class:`repro.sca.view.PersistentView`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..aggregates.base import AggregateSpec
from ..algebra.ast import Node, aggregate_attribute
from ..errors import AlgebraError, NotAChronicleError, SchemaError
from ..relational.predicate import Predicate
from ..relational.schema import Schema
from ..relational.tuples import Row


class Summary:
    """Base class of the two summarization operations."""

    #: Schema of the resulting persistent view (no sequencing attribute).
    output_schema: Schema
    #: Optional visibility filter over output rows (HAVING).
    having: Optional[Predicate] = None

    def visible(self, row: Row) -> bool:
        """Whether *row* passes the summary's visibility filter."""
        return self.having is None or self.having.evaluate(row)

    def __init__(self, expression: Node) -> None:
        if expression.schema.sequence_attribute is None:
            raise NotAChronicleError(
                "summarization applies to chronicle-algebra expressions "
                "(whose schema carries the sequencing attribute)"
            )
        self.expression = expression

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        """The view-location key of one delta row (group key / tuple)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.expression!r})"


class ProjectSummary(Summary):
    """Π with the sequencing attribute projected out.

    Parameters
    ----------
    expression:
        The chronicle-algebra expression χ.
    names:
        Projection attributes; must not include χ's sequencing attribute
        and must be non-empty.
    """

    def __init__(self, expression: Node, names: Sequence[str]) -> None:
        super().__init__(expression)
        names = list(names)
        if not names:
            raise SchemaError("summary projection requires at least one attribute")
        seq = expression.schema.sequence_attribute
        if seq in names:
            raise AlgebraError(
                f"summary projection must project out the sequencing "
                f"attribute {seq!r}; keeping it belongs to chronicle algebra"
            )
        for name in names:
            expression.schema.position(name)
        self.names: Tuple[str, ...] = tuple(names)
        self._positions = expression.schema.positions(names)
        attrs = [expression.schema.attribute(n) for n in names]
        self.output_schema = Schema(attrs, key=list(names))

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row.values[p] for p in self._positions)

    def view_row(self, key: Tuple[Any, ...]) -> Row:
        """Build the visible view row for a projected key."""
        return Row(self.output_schema, key, validate=False)

    def __repr__(self) -> str:
        return f"ProjectSummary({list(self.names)}, {self.expression!r})"


class GroupBySummary(Summary):
    """GROUPBY(χ, GL, AL) with the sequencing attribute not in GL.

    Parameters
    ----------
    expression:
        The chronicle-algebra expression χ.
    grouping:
        Grouping attributes (may be empty — the single global group);
        must not include the sequencing attribute.
    aggregates:
        The aggregation list; every function must honour the incremental
        contract (Definition 4.3 rejects non-incremental aggregates).
    """

    def __init__(
        self,
        expression: Node,
        grouping: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        having: Optional["Predicate"] = None,
    ) -> None:
        super().__init__(expression)
        grouping = list(grouping)
        seq = expression.schema.sequence_attribute
        if seq in grouping:
            raise AlgebraError(
                f"summary grouping must not include the sequencing attribute "
                f"{seq!r}; grouping by it belongs to chronicle algebra"
            )
        if not aggregates:
            raise AlgebraError("summary grouping requires at least one aggregate")
        for name in grouping:
            expression.schema.position(name)
        for agg in aggregates:
            agg.require_incremental()
            if agg.attribute is not None:
                expression.schema.position(agg.attribute)
        outputs = [a.output for a in aggregates]
        if len(set(outputs)) != len(outputs) or set(outputs) & set(grouping):
            raise SchemaError(f"duplicate output attribute names in {outputs + grouping}")
        self.grouping: Tuple[str, ...] = tuple(grouping)
        self.aggregates: Tuple[AggregateSpec, ...] = tuple(aggregates)
        self._positions = expression.schema.positions(grouping)
        attrs = [expression.schema.attribute(n) for n in grouping]
        attrs += [aggregate_attribute(expression.schema, a) for a in aggregates]
        self.output_schema = Schema(attrs, key=list(grouping) if grouping else None)
        # Aggregate-argument positions in the χ schema (None for COUNT(*)),
        # so the per-row maintenance step indexes instead of name-lookups.
        self._arg_positions: Tuple[Optional[int], ...] = tuple(
            None if a.attribute is None else expression.schema.position(a.attribute)
            for a in self.aggregates
        )
        # HAVING: a visibility filter over the summary's output rows.  It
        # does not affect maintenance (every group's state is kept — a
        # group may enter/leave the HAVING set as it accumulates); only
        # which rows the view *shows*.
        if having is not None:
            output_names = set(self.output_schema.names)
            unknown = having.attributes() - output_names
            if unknown:
                raise SchemaError(
                    f"HAVING references {sorted(unknown)}, not among the "
                    f"summary outputs {sorted(output_names)}"
                )
        self.having = having

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row.values[p] for p in self._positions)

    def initial_states(self) -> List[Any]:
        """Fresh accumulators, one per aggregation-list entry."""
        return [a.function.initial() for a in self.aggregates]

    def step_states(self, states: List[Any], row: Row) -> List[Any]:
        """Fold one χ-delta row into the group's accumulators (O(1) each)."""
        values = row.values
        return [
            a.function.step(state, 1 if p is None else values[p])
            for a, state, p in zip(self.aggregates, states, self._arg_positions)
        ]

    def merge_states(self, left: List[Any], right: List[Any]) -> List[Any]:
        """Merge two accumulator lists (decomposed evaluation)."""
        return [
            a.function.merge(l, r)
            for a, l, r in zip(self.aggregates, left, right)
        ]

    def view_row(self, key: Tuple[Any, ...], states: Sequence[Any]) -> Row:
        """Build the visible view row for a group's accumulators."""
        finals = tuple(
            a.function.finalize(state)
            for a, state in zip(self.aggregates, states)
        )
        return Row(self.output_schema, key + finals, validate=False)

    def __repr__(self) -> str:
        return (
            f"GroupBySummary({list(self.grouping)}, {list(self.aggregates)}, "
            f"{self.expression!r})"
        )
