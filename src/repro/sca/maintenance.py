"""Wiring append events into persistent-view maintenance.

One append event (a batch of rows at a single fresh sequence number,
possibly across several chronicles of a group) becomes one
``{chronicle_name: Delta}`` mapping, shared by every view that needs
maintaining.  :func:`attach_view` is the minimal wiring for a single
view; multi-view databases go through the
:class:`~repro.views.registry.ViewRegistry`, which adds affected-view
filtering (Section 5.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Tuple

from ..core.delta import Delta
from ..core.group import ChronicleGroup
from ..obs import runtime as obs_runtime
from ..relational.tuples import Row
from .view import PersistentView


def event_deltas(
    group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]
) -> Dict[str, Delta]:
    """Convert one append event into per-chronicle deltas."""
    deltas: Dict[str, Delta] = {}
    for name, rows in event.items():
        if rows:
            deltas[name] = Delta(group[name].schema, rows)
    return deltas


def maintain_views(
    views: Iterable[PersistentView], deltas: Mapping[str, Delta]
) -> int:
    """Apply one event's deltas to several views; returns rows folded."""
    folded = 0
    for view in views:
        folded += view.apply_event(deltas)
    return folded


def attach_view(
    view: PersistentView, group: ChronicleGroup
) -> Callable[[ChronicleGroup, Dict[str, Tuple[Row, ...]]], None]:
    """Subscribe a single view to a group's append events.

    Returns the listener so callers can later
    :meth:`~repro.core.group.ChronicleGroup.unsubscribe` it.
    """

    def listener(event_group: ChronicleGroup, event: Dict[str, Tuple[Row, ...]]) -> None:
        deltas = event_deltas(event_group, event)
        if not deltas:
            return
        obs = obs_runtime.ACTIVE
        if obs is not None and obs.trace:
            with obs.tracer.span(
                "maintain", view=view.name, engine="interpreted"
            ) as span:
                span.attrs["rows"] = view.apply_event(deltas)
        else:
            view.apply_event(deltas)

    group.subscribe(listener)
    return listener


def attach_compiled_view(
    view: PersistentView, group: ChronicleGroup
) -> Callable[[ChronicleGroup, Dict[str, Tuple[Row, ...]]], None]:
    """Subscribe a single view via a compiled plan (no registry).

    The minimal compiled counterpart of :func:`attach_view` — benchmarks
    use the pair to isolate the interpreter-vs-plan difference from the
    registry's routing.  Multi-view cross-expression sharing needs the
    :class:`~repro.views.registry.ViewRegistry` with ``compile=True``.
    """
    from ..algebra.plan import PlanCompiler
    from ..core.chronicle import maintenance_guard

    compiler = PlanCompiler()
    plan = compiler.compile(compiler.add_root(view.expression))

    def listener(event_group: ChronicleGroup, event: Dict[str, Tuple[Row, ...]]) -> None:
        deltas = event_deltas(event_group, event)
        if not deltas:
            return
        obs = obs_runtime.ACTIVE
        if obs is not None and obs.trace:
            with obs.tracer.span(
                "maintain", view=view.name, engine="compiled"
            ) as span:
                with maintenance_guard():
                    delta = plan(deltas)
                span.attrs["rows"] = view.apply_delta(delta)
        else:
            with maintenance_guard():
                delta = plan(deltas)
            view.apply_delta(delta)

    group.subscribe(listener)
    return listener
