"""Summarized chronicle algebra (Definition 4.3) and persistent views."""

from .maintenance import attach_view, event_deltas, maintain_views
from .summarize import GroupBySummary, ProjectSummary, Summary
from .view import PersistentView, evaluate_summary

__all__ = [
    "Summary",
    "ProjectSummary",
    "GroupBySummary",
    "PersistentView",
    "evaluate_summary",
    "attach_view",
    "event_deltas",
    "maintain_views",
]
