"""Fitting measured cost curves to complexity models.

The reproduction's claims are *shapes*: "maintenance cost is constant in
|C|", "grows like log |R|", "polynomial in |C|".  This module fits a
measured series ``(x, y)`` against the candidate models

    constant   y = a
    log        y = a + b·log2(x)
    linear     y = a + b·x
    nlogn      y = a + b·x·log2(x)
    quadratic  y = a + b·x²
    cubic      y = a + b·x³

by least squares and reports the *simplest adequate* model: the least
complex model whose RMSE is within ``tolerance`` of the best-fitting
model's.  This bias matters — constant data also fits a line with slope
≈ 0, and we want to call it constant.

Only numpy is used, and only here (the measurement kit, not the engine).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, NamedTuple, Optional, Sequence, Tuple

import numpy as np

#: Model name → basis function of x (the non-constant regressor).
_BASES: Dict[str, Optional[Callable[[float], float]]] = {
    "constant": None,
    "log": lambda x: math.log2(max(x, 1.0)),
    "linear": lambda x: x,
    "nlogn": lambda x: x * math.log2(max(x, 2.0)),
    "quadratic": lambda x: x * x,
    "cubic": lambda x: x * x * x,
}

#: Simplicity order used for tie-breaking.
MODEL_ORDER: Tuple[str, ...] = ("constant", "log", "linear", "nlogn", "quadratic", "cubic")


class Fit(NamedTuple):
    """One model's least-squares fit."""

    model: str
    intercept: float
    slope: float  # 0 for the constant model
    rmse: float
    r_squared: float

    def predict(self, x: float) -> float:
        basis = _BASES[self.model]
        if basis is None:
            return self.intercept
        return self.intercept + self.slope * basis(x)


class FitResult(NamedTuple):
    """The full fitting outcome."""

    best: Fit
    fits: Dict[str, Fit]

    @property
    def model(self) -> str:
        return self.best.model


def _fit_model(model: str, xs: np.ndarray, ys: np.ndarray) -> Fit:
    basis = _BASES[model]
    if basis is None:
        intercept = float(np.mean(ys))
        predictions = np.full_like(ys, intercept)
        slope = 0.0
    else:
        regressor = np.array([basis(float(x)) for x in xs])
        design = np.column_stack([np.ones_like(regressor), regressor])
        coefficients, *_ = np.linalg.lstsq(design, ys, rcond=None)
        intercept, slope = float(coefficients[0]), float(coefficients[1])
        predictions = design @ coefficients
    residuals = ys - predictions
    rmse = float(np.sqrt(np.mean(residuals ** 2)))
    total = float(np.sum((ys - np.mean(ys)) ** 2))
    r_squared = 1.0 - float(np.sum(residuals ** 2)) / total if total > 0 else 1.0
    return Fit(model, intercept, slope, rmse, r_squared)


def fit_series(
    xs: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] = MODEL_ORDER,
    tolerance: float = 0.15,
) -> FitResult:
    """Fit ``(xs, ys)`` and pick the simplest adequate model.

    Parameters
    ----------
    xs, ys:
        The measured series (at least 3 points).
    models:
        Candidate model names (subset of :data:`MODEL_ORDER`).
    tolerance:
        A simpler model is preferred when its RMSE is within
        ``(1 + tolerance)`` of the overall best RMSE (plus a small
        absolute epsilon so exactly-flat data fits "constant").
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 3:
        raise ValueError("fitting needs at least 3 points")
    xs_array = np.asarray(xs, dtype=float)
    ys_array = np.asarray(ys, dtype=float)
    fits = {model: _fit_model(model, xs_array, ys_array) for model in models}
    best_rmse = min(fit.rmse for fit in fits.values())
    scale = max(float(np.mean(np.abs(ys_array))), 1e-12)
    threshold = best_rmse * (1.0 + tolerance) + 1e-9 * scale
    for model in MODEL_ORDER:
        if model in fits and fits[model].rmse <= threshold:
            return FitResult(fits[model], fits)
    # Unreachable: the best model itself satisfies the threshold.
    raise AssertionError("model selection failed")


def median(values: Sequence[float]) -> float:
    """The sample median (average-of-two for even lengths)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(float(v) for v in values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation — the robust spread estimate.

    Unlike the standard deviation, one wild outlier (a GC pause, a
    background process stealing the core) barely moves it, which is what
    noise-aware benchmark gating needs.
    """
    center = median(values)
    return median([abs(float(v) - center) for v in values])


class GrowthClass(NamedTuple):
    """Verdict of :func:`classify_growth`: model plus the evidence."""

    model: str
    fit: Fit
    flat: bool  # passed the normalized-deviation flatness test


def classify_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    flat_slack: float = 0.25,
    models: Sequence[str] = MODEL_ORDER,
    tolerance: float = 0.15,
) -> GrowthClass:
    """Classify a measured series, biased toward calling flat data flat.

    Pure least squares struggles to discriminate "constant" from "log"
    on short noisy series: over a 100x range of x, log2(x) spans only a
    factor of ~7, so a log model with a tiny slope beats the constant
    model on almost any jitter.  This wrapper applies the robust
    flatness test first — if every point sits within ``flat_slack`` of
    the series median, the series is declared constant regardless of
    which basis function happens to chase the noise best — and falls
    back to :func:`fit_series` model selection otherwise.

    The conformance profiler (:mod:`repro.obs.conformance`) uses this to
    turn per-append cost sweeps into IM-class verdicts.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    center = median(ys)
    scale = max(abs(center), 1e-12)
    flat = all(abs(float(y) - center) <= flat_slack * scale for y in ys)
    if flat and all(y == ys[0] for y in ys):
        # Exactly flat: skip the regression entirely.
        value = float(ys[0])
        return GrowthClass("constant", Fit("constant", value, 0.0, 0.0, 1.0), True)
    result = fit_series(xs, ys, models=models, tolerance=tolerance)
    if flat:
        constant = result.fits.get("constant")
        if constant is None:
            constant = _fit_model(
                "constant", np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)
            )
        return GrowthClass("constant", constant, True)
    return GrowthClass(result.model, result.best, False)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """y[last]/y[first] normalized by x growth — a quick flatness check.

    A value near 1 means the series is flat in x (constant-time
    behaviour); a value tracking ``xs[-1]/xs[0]`` means linear growth.
    """
    if len(xs) < 2:
        raise ValueError("growth_ratio needs at least 2 points")
    y0 = max(abs(float(ys[0])), 1e-12)
    return float(ys[-1]) / y0


def is_flat(
    xs: Sequence[float], ys: Sequence[float], slack: float = 0.5
) -> bool:
    """Whether the series is independent of x, up to *slack* (50%).

    Used by tests asserting Theorem 4.2's |C|-independence without
    depending on wall-clock stability: the last measurement must be
    within ``(1 + slack)`` of the series mean.
    """
    mean = sum(ys) / len(ys)
    if mean == 0:
        return all(y == 0 for y in ys)
    return all(abs(y - mean) <= slack * abs(mean) for y in ys)
