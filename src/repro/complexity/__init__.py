"""Measurement kit: cost counters, sweep harness, complexity fitting."""

from .counters import GLOBAL_COUNTERS, CostCounters
from .fitting import (
    Fit,
    FitResult,
    GrowthClass,
    classify_growth,
    fit_series,
    growth_ratio,
    is_flat,
    mad,
    median,
)
from .harness import Measurement, Sweep, format_table, measure, report

__all__ = [
    "CostCounters",
    "GLOBAL_COUNTERS",
    "classify_growth",
    "fit_series",
    "Fit",
    "FitResult",
    "GrowthClass",
    "growth_ratio",
    "is_flat",
    "mad",
    "median",
    "Sweep",
    "Measurement",
    "measure",
    "format_table",
    "report",
]
