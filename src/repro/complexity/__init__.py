"""Measurement kit: cost counters, sweep harness, complexity fitting."""

from .counters import GLOBAL_COUNTERS, CostCounters
from .fitting import Fit, FitResult, fit_series, growth_ratio, is_flat
from .harness import Measurement, Sweep, format_table, measure, report

__all__ = [
    "CostCounters",
    "GLOBAL_COUNTERS",
    "fit_series",
    "Fit",
    "FitResult",
    "growth_ratio",
    "is_flat",
    "Sweep",
    "Measurement",
    "measure",
    "format_table",
    "report",
]
