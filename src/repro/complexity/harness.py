"""Parameter-sweep harness and report formatting for the experiments.

Every benchmark in ``benchmarks/`` follows the same pattern: build a
system at parameter x, measure the per-append cost (wall time and cost
counters), print a table row per x, and fit the series to a complexity
model.  This module holds that shared machinery so each benchmark file
reads as: workload + sweep definition + expectations.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from .counters import GLOBAL_COUNTERS
from .fitting import FitResult, fit_series


class Measurement(NamedTuple):
    """One sweep point: parameter value, timing, and counter deltas."""

    x: float
    seconds: float
    counters: Dict[str, int]

    @property
    def probes(self) -> int:
        return self.counters.get("index_probe", 0)

    @property
    def tuple_ops(self) -> int:
        return self.counters.get("tuple_op", 0)

    @property
    def chronicle_reads(self) -> int:
        return self.counters.get("chronicle_read", 0)

    @property
    def work(self) -> int:
        """Total countable work — the theorems' operation-count measure."""
        return sum(self.counters.values())


def measure(action: Callable[[], Any], repeats: int = 1) -> Measurement:
    """Run *action* *repeats* times; returns per-run averages.

    Captures wall time and the global cost-counter deltas.
    """
    before = GLOBAL_COUNTERS.snapshot()
    start = time.perf_counter()
    for _ in range(repeats):
        action()
    elapsed = time.perf_counter() - start
    deltas = GLOBAL_COUNTERS.diff(before)
    return Measurement(
        0.0,
        elapsed / repeats,
        {event: count // repeats for event, count in deltas.items()},
    )


class Sweep:
    """A series of measurements over a swept parameter.

    Parameters
    ----------
    parameter:
        Name of the swept variable (for table headers).
    """

    def __init__(self, parameter: str) -> None:
        self.parameter = parameter
        self.points: List[Measurement] = []

    def run(
        self,
        xs: Sequence[float],
        setup: Callable[[float], Callable[[], Any]],
        repeats: int = 1,
    ) -> "Sweep":
        """For each x: ``action = setup(x)``, then measure the action.

        Setup work (building chronicles, preloading streams) happens
        outside the measured region, with counters suspended.
        """
        for x in xs:
            with GLOBAL_COUNTERS.disabled():
                action = setup(x)
            point = measure(action, repeats=repeats)
            self.points.append(point._replace(x=float(x)))
        return self

    # -- accessors ---------------------------------------------------------------

    @property
    def xs(self) -> List[float]:
        return [point.x for point in self.points]

    def series(self, metric: str = "seconds") -> List[float]:
        """Extract one metric: 'seconds', 'work', or a counter name."""
        values = []
        for point in self.points:
            if metric == "seconds":
                values.append(point.seconds)
            elif metric == "work":
                values.append(float(point.work))
            else:
                values.append(float(point.counters.get(metric, 0)))
        return values

    def fit(self, metric: str = "work", **kwargs: Any) -> FitResult:
        """Fit the metric's series to a complexity model."""
        return fit_series(self.xs, self.series(metric), **kwargs)

    def rows(self) -> List[List[Any]]:
        """Table rows: x, time (µs), work, probes, chronicle reads."""
        return [
            [
                point.x,
                point.seconds * 1e6,
                point.work,
                point.probes,
                point.chronicle_reads,
            ]
            for point in self.points
        ]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table (the benches' printed deliverable)."""
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def report(
    title: str,
    parameter: str,
    sweep: "Sweep",
    extra_columns: Optional[Dict[str, Sequence[Any]]] = None,
) -> str:
    """Render one experiment's table with the standard columns."""
    headers = [parameter, "µs/append", "work", "probes", "chr_reads"]
    rows = sweep.rows()
    if extra_columns:
        for name, values in extra_columns.items():
            headers.append(name)
            for row, value in zip(rows, values):
                row.append(value)
    body = format_table(headers, rows)
    return f"== {title} ==\n{body}"
