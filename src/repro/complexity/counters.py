"""Instrumented cost model.

The paper's complexity classes (Section 3) are stated "modulo the overhead
of index lookups": IM-Constant forbids even index lookups, IM-log(R)
charges one index probe per maintained tuple, and so on.  Wall-clock time
on a laptop is noisy at these scales, so alongside timing we count the
*operations* the theorems actually bound:

* ``index_probe``   — one comparison/hash step inside an index;
* ``index_lookup``  — one completed index lookup;
* ``tuple_op``      — one tuple produced, matched, or aggregated;
* ``chronicle_read``— one tuple read from a chronicle store (must be 0
  during incremental maintenance — the no-access rule);
* ``view_read``     — one tuple read back from a materialized view other
  than the O(log |V|) locate step;
* ``plan_compile``  — one maintenance plan compiled (registration-time
  work, never on the append path);
* ``delta_cache_hit`` — one subexpression delta served from the per-event
  cache instead of being recomputed (the benefit of cross-view sharing).

A single process-wide :data:`GLOBAL_COUNTERS` instance is threaded through
the storage and maintenance layers; benchmarks snapshot and diff it.

.. warning:: **Process-wide caveat.**  :data:`GLOBAL_COUNTERS` is one
   shared instance: plain :meth:`CostCounters.measure` diffs observe
   *every* count made anywhere in the process while the block runs.  Two
   overlapping ``measure()`` blocks — a benchmark on one thread and the
   observability tracer on another, or nested consumers on the same
   thread that must not see each other — therefore corrupt each other's
   deltas.  Consumers that need isolation should use
   :meth:`CostCounters.scope`, which yields a private counter bundle fed
   only by counts made *by the current thread* while the scope is
   active.  Scopes nest (an inner scope's counts also land in the outer
   one) and scopes on different threads never mix.  ``measure()``
   remains the cheap single-threaded tool; ``scope()`` is the safe one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List


class CostCounters:
    """A mutable bundle of named operation counters."""

    EVENTS = (
        "index_probe",
        "index_lookup",
        "tuple_op",
        "chronicle_read",
        "view_read",
        "aggregate_step",
        "plan_compile",
        "delta_cache_hit",
    )

    __slots__ = ("counts", "enabled", "_scopes", "_local")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {event: 0 for event in self.EVENTS}
        self.enabled = True
        # Number of scope() blocks active across all threads.  Zero in
        # steady state, so count()'s fast path pays one extra truth test.
        self._scopes = 0
        self._local = threading.local()

    def count(self, event: str, amount: int = 1) -> None:
        """Record *amount* occurrences of *event*."""
        if self.enabled:
            self.counts[event] += amount
            if self._scopes:
                for scoped in getattr(self._local, "stack", ()):
                    scoped[event] = scoped.get(event, 0) + amount

    def reset(self) -> None:
        """Zero every counter."""
        for event in self.counts:
            self.counts[event] = 0

    def snapshot(self) -> Dict[str, int]:
        """A copy of the current counter values."""
        return dict(self.counts)

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since *before* (a prior :meth:`snapshot`)."""
        return {event: self.counts[event] - before.get(event, 0) for event in self.counts}

    @property
    def total(self) -> int:
        """Sum of all counters — a crude single-number cost."""
        return sum(self.counts.values())

    @contextmanager
    def measure(self) -> Iterator[Dict[str, int]]:
        """Context manager yielding a dict filled with deltas on exit.

        >>> with GLOBAL_COUNTERS.measure() as cost:
        ...     do_work()
        >>> cost["index_probe"]
        """
        before = self.snapshot()
        result: Dict[str, int] = {}
        try:
            yield result
        finally:
            result.update(self.diff(before))

    @contextmanager
    def scope(self) -> Iterator["CostCounters"]:
        """Thread-local isolated counting scope.

        Yields a fresh :class:`CostCounters` that accumulates only the
        counts made *by the calling thread* while the scope is active.
        Unlike :meth:`measure`, concurrent consumers on other threads
        cannot pollute the result, and nested scopes compose: counts made
        inside an inner scope are credited to every enclosing scope of
        the same thread (and still to the global totals).

        >>> with GLOBAL_COUNTERS.scope() as cost:
        ...     do_work()
        >>> cost.counts["tuple_op"]
        """
        scoped = CostCounters()
        stack: List[Dict[str, int]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(scoped.counts)
        self._scopes += 1
        try:
            yield scoped
        finally:
            self._scopes -= 1
            stack.pop()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily suspend counting (setup code in benchmarks)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.counts.items() if v)
        return f"CostCounters({inner or 'zero'})"


#: Process-wide counters used by default throughout the library.
GLOBAL_COUNTERS = CostCounters()
