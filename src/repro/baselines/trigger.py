"""Hand-coded summary-field updater: the status-quo the paper motivates
against.

Section 1: "an application program may define a few summary fields (e.g.,
minutes_called, dollar_balance) for each customer, and update these fields
whenever a new transaction is processed … the logic to update the summary
fields due to a transaction is encoded procedurally, and the burden of
writing this code is with the application programmer.  This updating code
is known to be very tricky, and has been the cause of well-publicized
banking disasters."

:class:`TriggerStyleUpdater` is that procedural code, faithfully: a dict
of summary fields and a user-supplied update procedure per transaction
type.  It is fast (that is why applications do it) but offers none of the
declarative guarantees — and :class:`BuggyTriggerUpdater` reproduces the
February 18, 1994 Chemical Bank failure mode (double-applied updates) that
the examples and tests contrast with the chronicle model's correctness.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

from ..core.group import ChronicleGroup
from ..relational.tuples import Row

#: A procedural update: (summary_fields_for_key, transaction_row) -> None,
#: mutating the fields in place.
UpdateProcedure = Callable[[Dict[str, Any], Row], None]


class TriggerStyleUpdater:
    """Procedurally maintained per-key summary fields.

    Parameters
    ----------
    key_attribute:
        Transaction attribute identifying the account/customer.
    initial_fields:
        Factory for a fresh key's summary fields.
    procedure:
        The hand-written update code, run once per transaction.
    """

    def __init__(
        self,
        key_attribute: str,
        initial_fields: Callable[[], Dict[str, Any]],
        procedure: UpdateProcedure,
    ) -> None:
        self.key_attribute = key_attribute
        self._initial_fields = initial_fields
        self._procedure = procedure
        self._fields: Dict[Hashable, Dict[str, Any]] = {}
        self._processed = 0

    def process(self, row: Row) -> None:
        """Run the update procedure for one transaction."""
        key = row[self.key_attribute]
        fields = self._fields.get(key)
        if fields is None:
            fields = self._initial_fields()
            self._fields[key] = fields
        self._procedure(fields, row)
        self._processed += 1

    def on_event(self, group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]) -> None:
        """Append listener: run the procedure per transaction row."""
        for rows in event.values():
            for row in rows:
                self.process(row)

    def attach(self, group: ChronicleGroup) -> None:
        group.subscribe(self.on_event)

    # -- queries -------------------------------------------------------------------

    def fields(self, key: Hashable) -> Optional[Dict[str, Any]]:
        """The summary fields for *key* (None when unseen)."""
        fields = self._fields.get(key)
        return dict(fields) if fields is not None else None

    def value(self, key: Hashable, field: str) -> Any:
        fields = self._fields.get(key)
        return None if fields is None else fields.get(field)

    @property
    def processed_count(self) -> int:
        return self._processed

    def __len__(self) -> int:
        return len(self._fields)

    def __repr__(self) -> str:
        return (
            f"TriggerStyleUpdater(key={self.key_attribute!r}, "
            f"keys={len(self._fields)}, processed={self._processed})"
        )


class BuggyTriggerUpdater(TriggerStyleUpdater):
    """The Chemical Bank failure mode: updates applied twice.

    On February 18, 1994, buggy updating software applied ATM withdrawal
    updates incorrectly, bouncing checks for thousands of customers
    [NYT94].  This subclass deterministically double-applies every
    *n*-th update — the class of bug that hand-written summary-field
    code invites and that a declaratively defined persistent view makes
    impossible.  Used by ``examples/banking_atm.py`` and the failure-
    injection tests.
    """

    def __init__(
        self,
        key_attribute: str,
        initial_fields: Callable[[], Dict[str, Any]],
        procedure: UpdateProcedure,
        double_apply_every: int = 97,
    ) -> None:
        super().__init__(key_attribute, initial_fields, procedure)
        if double_apply_every <= 0:
            raise ValueError("double_apply_every must be positive")
        self.double_apply_every = double_apply_every

    def process(self, row: Row) -> None:
        super().process(row)
        if self._processed % self.double_apply_every == 0:
            # The bug: the procedure runs a second time for this record.
            key = row[self.key_attribute]
            self._procedure(self._fields[key], row)
