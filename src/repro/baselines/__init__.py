"""Baselines: full recomputation (IM-C^k) and procedural summary fields."""

from .recompute import RecomputeMaintainer
from .trigger import BuggyTriggerUpdater, TriggerStyleUpdater

__all__ = ["RecomputeMaintainer", "TriggerStyleUpdater", "BuggyTriggerUpdater"]
