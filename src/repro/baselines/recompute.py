"""Full-recomputation baseline: the IM-C^k representative.

Proposition 3.1: relational algebra with grouping and aggregation, applied
to chronicles and relations, is in IM-C^k and *not* in IM-R^k — a view in
that language may require access to the whole chronicle on every append.
The simplest member of the class, and the one real systems fall back to,
is *recompute from scratch*: store the chronicle, and after each append
re-evaluate the view over everything stored.

:class:`RecomputeMaintainer` does exactly that for any expression the
batch evaluator handles (all of CA **plus** the extension operators
outside CA), making it both the Prop 3.1 baseline and the only general
maintainer for Theorem 4.3's forbidden operators.  Its per-append cost
necessarily grows with |C| — benchmark E1 plots it against the delta
engine's flat line.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..algebra.ast import Node
from ..algebra.evaluate import evaluate
from ..core.group import ChronicleGroup
from ..relational.algebra import Table, group_by as ra_group_by, project as ra_project
from ..relational.tuples import Row
from ..sca.summarize import GroupBySummary, ProjectSummary, Summary


class RecomputeMaintainer:
    """Maintains a summary view by recomputing it from the stored chronicle.

    The base chronicles must retain their history (``retention=None``) —
    the storage burden the chronicle model exists to avoid.

    Parameters
    ----------
    summary:
        Any summary over any expression the batch evaluator supports
        (including the outside-CA extension operators).
    """

    def __init__(self, summary: Summary) -> None:
        self.summary = summary
        self.expression: Node = summary.expression
        self._result: Optional[Table] = None
        self._recomputations = 0

    # -- maintenance --------------------------------------------------------------------

    def recompute(self) -> Table:
        """Re-evaluate the view from scratch over the stored chronicles."""
        table = evaluate(self.expression)
        if isinstance(self.summary, ProjectSummary):
            result = ra_project(table, list(self.summary.names))
        else:
            assert isinstance(self.summary, GroupBySummary)
            result = ra_group_by(
                table, list(self.summary.grouping), list(self.summary.aggregates)
            )
            result = Table(
                self.summary.output_schema,
                [
                    row.rebind(self.summary.output_schema)
                    for row in result.rows
                    if self.summary.visible(row)
                ],
            )
        self._result = result
        self._recomputations += 1
        return result

    def on_event(self, group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]) -> None:
        """Append listener: recompute after every append."""
        self.recompute()

    def attach(self, group: ChronicleGroup) -> None:
        """Subscribe to a group so every append triggers recomputation."""
        group.subscribe(self.on_event)

    # -- queries -------------------------------------------------------------------------

    @property
    def result(self) -> Table:
        """The current view contents (recomputing if never evaluated)."""
        if self._result is None:
            return self.recompute()
        return self._result

    @property
    def recomputation_count(self) -> int:
        return self._recomputations

    def rows(self):
        return iter(self.result.rows)

    def __iter__(self):
        return self.rows()

    def __len__(self) -> int:
        return len(self.result)

    def __repr__(self) -> str:
        return (
            f"RecomputeMaintainer({self.expression!r}, "
            f"recomputations={self._recomputations})"
        )
