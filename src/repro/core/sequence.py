"""Sequence numbers and chronons.

Sequence numbers are drawn from an infinite ordered domain (we use the
integers) shared by every chronicle in a chronicle group.  "There is a
temporal instant (or chronon) associated with each sequence number"
(Section 2.1); the mapping is what the periodic summarized chronicle
algebra of Section 5.1 needs in order to place chronicle tuples into
calendar intervals.

Three mappers cover the practical cases:

* :class:`IdentityChronons` — the sequence number *is* the chronon
  (useful when records are timestamped externally);
* :class:`LinearChronons` — affine mapping ``origin + step * sn`` (steady
  arrival rates, handy in synthetic workloads);
* :class:`RecordedChronons` — explicit timestamps recorded at append
  time, with monotonicity enforcement.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List

from ..errors import SequenceOrderError

#: Sequence numbers are plain ints; the alias documents intent.
SequenceNumber = int


class ChrononMapper:
    """Maps sequence numbers to temporal instants (chronons)."""

    def chronon(self, sequence_number: SequenceNumber) -> float:
        """The temporal instant associated with *sequence_number*."""
        raise NotImplementedError

    def record(self, sequence_number: SequenceNumber, instant: float) -> None:
        """Record an observed (sn, instant) pair; default ignores it."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class IdentityChronons(ChrononMapper):
    """chronon(sn) = sn."""

    def chronon(self, sequence_number: SequenceNumber) -> float:
        return float(sequence_number)


class LinearChronons(ChrononMapper):
    """chronon(sn) = origin + step * sn."""

    def __init__(self, origin: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("chronon step must be positive")
        self.origin = origin
        self.step = step

    def chronon(self, sequence_number: SequenceNumber) -> float:
        return self.origin + self.step * sequence_number

    def __repr__(self) -> str:
        return f"LinearChronons(origin={self.origin}, step={self.step})"


class RecordedChronons(ChrononMapper):
    """Explicit, monotone (sequence number, instant) recordings.

    ``chronon(sn)`` returns the instant recorded for the largest recorded
    sequence number ``<= sn`` — i.e. the clock reading current when that
    part of the stream arrived.
    """

    def __init__(self) -> None:
        self._sns: List[SequenceNumber] = []
        self._instants: List[float] = []

    def record(self, sequence_number: SequenceNumber, instant: float) -> None:
        if self._sns:
            if sequence_number <= self._sns[-1]:
                raise SequenceOrderError(
                    f"chronon recording for sequence {sequence_number} is not "
                    f"after the last recorded sequence {self._sns[-1]}"
                )
            if instant < self._instants[-1]:
                raise SequenceOrderError(
                    f"chronon {instant} regresses below {self._instants[-1]}"
                )
        self._sns.append(sequence_number)
        self._instants.append(instant)

    def chronon(self, sequence_number: SequenceNumber) -> float:
        position = bisect_right(self._sns, sequence_number)
        if position == 0:
            raise SequenceOrderError(
                f"no chronon recorded at or before sequence {sequence_number}"
            )
        return self._instants[position - 1]

    def __len__(self) -> int:
        return len(self._sns)


class SequenceIssuer:
    """Monotone sequence-number source for a chronicle group.

    Tracks the high-water mark across every chronicle of the group; a new
    batch may reuse the current batch number only through the explicit
    simultaneous-append API of the group (the issuer itself hands out
    strictly increasing numbers).
    """

    __slots__ = ("_last",)

    def __init__(self, start: SequenceNumber = 0) -> None:
        self._last: SequenceNumber = start - 1

    @property
    def watermark(self) -> SequenceNumber:
        """The highest sequence number issued so far (start-1 if none)."""
        return self._last

    def issue(self) -> SequenceNumber:
        """Hand out the next sequence number."""
        self._last += 1
        return self._last

    def accept(self, sequence_number: SequenceNumber) -> SequenceNumber:
        """Validate an externally supplied sequence number and advance.

        Raises :class:`SequenceOrderError` unless it exceeds the
        watermark, per the chronicle model's append rule.
        """
        if sequence_number <= self._last:
            raise SequenceOrderError(
                f"sequence number {sequence_number} is not greater than the "
                f"chronicle group's watermark {self._last}"
            )
        self._last = sequence_number
        return sequence_number

    def __repr__(self) -> str:
        return f"SequenceIssuer(watermark={self._last})"
