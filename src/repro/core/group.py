"""Chronicle groups: shared sequence-number domains.

"We define a chronicle group as a collection of chronicles whose sequence
numbers are drawn from the same domain, along with the requirement that
an insert into any chronicle in a chronicle group must have a sequence
number greater than the sequence number of any tuple in the chronicle
group" (Section 4).  Operations like union, difference and the
sequence-number equijoin are only permitted between chronicles of the
same group — the validator checks this structurally.

The group is also the natural place for:

* the append entry point (stamping batches, recording chronons,
  notifying maintenance listeners);
* the *watermark* that the proactive-update rule of Section 2.3 is
  policed against;
* simultaneous multi-chronicle appends sharing one sequence number
  ("multiple tuples with the same sequence number can be inserted
  simultaneously").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ChronicleGroupError
from ..obs import runtime as obs_runtime
from ..relational.schema import Attribute, Schema
from ..relational.tuples import Row
from ..relational.types import SEQ
from .chronicle import Chronicle, RowValues
from .sequence import ChrononMapper, IdentityChronons, SequenceIssuer, SequenceNumber

#: Listener signature: one call per append event, covering every chronicle
#: touched at that sequence number: (group, {chronicle_name: stamped_rows}).
AppendListener = Callable[["ChronicleGroup", Dict[str, Tuple[Row, ...]]], None]


def chronicle_schema(
    *attrs: "Tuple[str, Any] | Attribute",
    sequence_attribute: str = "sn",
) -> Schema:
    """Build a chronicle schema: the given attributes plus the SEQ column.

    The sequencing attribute is prepended unless an attribute of that
    name is already present.
    """
    attributes: List[Attribute] = [
        a if isinstance(a, Attribute) else Attribute(a[0], a[1]) for a in attrs
    ]
    names = [a.name for a in attributes]
    if sequence_attribute not in names:
        attributes.insert(0, Attribute(sequence_attribute, SEQ))
    return Schema(attributes, sequence_attribute=sequence_attribute)


class ChronicleGroup:
    """A named collection of chronicles over one sequence-number domain."""

    def __init__(
        self,
        name: str,
        chronons: Optional[ChrononMapper] = None,
        start: SequenceNumber = 0,
    ) -> None:
        self.name = name
        self.chronicles: Dict[str, Chronicle] = {}
        self.chronons = chronons if chronons is not None else IdentityChronons()
        self._issuer = SequenceIssuer(start)
        self._listeners: List[AppendListener] = []
        #: Durability hook: when set (by :class:`~repro.storage.durability
        #: .DurabilityManager`), called with ``(group, event, watermark)``
        #: after admission/storage but *before* the maintenance listeners —
        #: the append-ahead discipline.  ``None`` keeps the hot path
        #: untouched (one attribute load per append event).
        self.wal_sink: Optional[
            Callable[["ChronicleGroup", Dict[str, Tuple[Row, ...]], SequenceNumber], None]
        ] = None

    # -- membership --------------------------------------------------------------

    def create_chronicle(
        self,
        name: str,
        schema: "Schema | Sequence[Tuple[str, Any]]",
        retention: Optional[int] = None,
    ) -> Chronicle:
        """Create and register a chronicle in this group.

        *schema* may be a ready chronicle :class:`Schema` or a sequence of
        ``(name, domain)`` pairs, in which case an ``sn`` SEQ column is
        added automatically.
        """
        if name in self.chronicles:
            raise ChronicleGroupError(f"group {self.name!r} already has chronicle {name!r}")
        if not isinstance(schema, Schema):
            schema = chronicle_schema(*schema)
        chronicle = Chronicle(name, schema, retention=retention)
        chronicle.group = self
        self.chronicles[name] = chronicle
        return chronicle

    def adopt(self, chronicle: Chronicle) -> Chronicle:
        """Register an externally built chronicle into this group."""
        if chronicle.name in self.chronicles:
            raise ChronicleGroupError(
                f"group {self.name!r} already has chronicle {chronicle.name!r}"
            )
        if chronicle.group is not None and chronicle.group is not self:
            raise ChronicleGroupError(
                f"chronicle {chronicle.name!r} already belongs to group "
                f"{chronicle.group.name!r}"
            )
        chronicle.group = self
        self.chronicles[chronicle.name] = chronicle
        return chronicle

    def __contains__(self, name: object) -> bool:
        return name in self.chronicles

    def __getitem__(self, name: str) -> Chronicle:
        try:
            return self.chronicles[name]
        except KeyError:
            raise ChronicleGroupError(
                f"group {self.name!r} has no chronicle {name!r}"
            ) from None

    # -- watermark ----------------------------------------------------------------

    @property
    def watermark(self) -> SequenceNumber:
        """Highest sequence number seen by the group (-1 before any)."""
        return self._issuer.watermark

    def next_sequence_number(self) -> SequenceNumber:
        """The sequence number the next append will receive (peek)."""
        return self._issuer.watermark + 1

    # -- listeners ------------------------------------------------------------------

    def subscribe(self, listener: AppendListener) -> None:
        """Register a maintenance listener called after every append."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: AppendListener) -> None:
        """Remove a previously registered listener."""
        self._listeners.remove(listener)

    # -- appends ----------------------------------------------------------------------

    def append(
        self,
        chronicle: "Chronicle | str",
        records: Union[RowValues, Sequence[RowValues]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Tuple[Row, ...]:
        """Append one batch of records at a single fresh sequence number.

        *records* is one record or a list of records; all share the newly
        issued (or validated externally supplied) sequence number.
        Returns the stamped rows after notifying listeners.
        """
        resolved = self._resolve(chronicle)
        return self.append_simultaneous(
            {resolved: records},
            sequence_number=sequence_number,
            instant=instant,
        )[resolved.name]

    def append_simultaneous(
        self,
        batches: Mapping["Chronicle | str", Union[RowValues, Sequence[RowValues]]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Dict[str, Tuple[Row, ...]]:
        """Append to several chronicles of the group at one sequence number.

        This is the "simultaneous insertion" of Section 4: every record in
        every batch shares the same fresh sequence number.

        When observability is installed with tracing on, the whole call —
        admission, storage, and every maintenance listener — runs inside
        one ``append`` root span (see :mod:`repro.obs`).
        """
        obs = obs_runtime.ACTIVE
        if obs is not None and obs.trace:
            span = obs.tracer.start("append", group=self.name)
            try:
                stamped = self._append_impl(batches, sequence_number, instant)
                sizes = {name: len(rows) for name, rows in stamped.items() if rows}
                span.attrs["deltas"] = sizes
                if sizes:
                    first = next(rows for rows in stamped.values() if rows)
                    span.attrs["sequence"] = first[0].sequence_number
            finally:
                obs.tracer.finish(span)
            return stamped
        return self._append_impl(batches, sequence_number, instant)

    def _append_impl(
        self,
        batches: Mapping["Chronicle | str", Union[RowValues, Sequence[RowValues]]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Dict[str, Tuple[Row, ...]]:
        resolved: Dict[Chronicle, List[RowValues]] = {}
        for target, records in batches.items():
            chronicle = self._resolve(target)
            resolved[chronicle] = self._normalize_records(chronicle, records)
        if sequence_number is None:
            stamp = self._issuer.issue()
        else:
            stamp = self._issuer.accept(sequence_number)
        if instant is not None:
            self.chronons.record(stamp, instant)
        stamped: Dict[str, Tuple[Row, ...]] = {}
        for chronicle, records in resolved.items():
            admitted = chronicle._admit_batch(records, stamp)
            # Records in one batch share the sequence number, so identical
            # records are the same tuple: set semantics dedups them here,
            # keeping storage consistent with the (deduplicating) deltas.
            if len(admitted) == 1:
                rows = tuple(admitted)
            else:
                seen = set()
                unique = []
                for row in admitted:
                    if row.values not in seen:
                        seen.add(row.values)
                        unique.append(row)
                rows = tuple(unique)
            chronicle._store(rows)
            stamped[chronicle.name] = rows
        event = {name: rows for name, rows in stamped.items() if rows}
        if event:
            sink = self.wal_sink
            if sink is not None:
                sink(self, event, stamp)
            for listener in self._listeners:
                listener(self, event)
        return stamped

    def ingest_stamped(
        self,
        event: Mapping[str, Sequence[Row]],
        watermark: SequenceNumber,
    ) -> None:
        """Absorb already-stamped rows as **one** maintenance event.

        The sharded engine's group-commit path: rows were admitted and
        stamped elsewhere (several transaction batches, each with its own
        fresh sequence number — *watermark* is the highest), and this
        group absorbs them in one shot: the issuer advances to
        *watermark*, each chronicle stores its rows, and the listeners
        fire **once** for the union.  Coalescing is sound for every CA
        delta rule — each rule is either per-row (select/project/union),
        matches only equal *fresh* sequence numbers (SeqJoin), keys delta
        groups by fresh sequence numbers (GroupBySeq), or cancels only
        identical tuples (Difference) — so one coalesced event folds to
        the same view state as the per-batch events would.

        Sequence-number gaps below *watermark* are legal (other shards
        own the skipped numbers); *watermark* itself must still exceed
        this group's previous watermark.
        """
        obs = obs_runtime.ACTIVE
        if obs is not None and obs.trace:
            span = obs.tracer.start("append", group=self.name)
            try:
                self._ingest_stamped_impl(event, watermark)
                span.attrs["deltas"] = {
                    name: len(rows) for name, rows in event.items() if rows
                }
                span.attrs["sequence"] = watermark
            finally:
                obs.tracer.finish(span)
            return
        self._ingest_stamped_impl(event, watermark)

    def _ingest_stamped_impl(
        self,
        event: Mapping[str, Sequence[Row]],
        watermark: SequenceNumber,
    ) -> None:
        if watermark > self._issuer.watermark:
            self._issuer.accept(watermark)
        fired: Dict[str, Tuple[Row, ...]] = {}
        for name, rows in event.items():
            if not rows:
                continue
            rows = tuple(rows)
            self[name]._store(rows)
            fired[name] = rows
        if fired:
            for listener in self._listeners:
                listener(self, fired)

    def _resolve(self, target: "Chronicle | str") -> Chronicle:
        if isinstance(target, Chronicle):
            if target.group is not self:
                raise ChronicleGroupError(
                    f"chronicle {target.name!r} does not belong to group {self.name!r}"
                )
            return target
        return self[target]

    @staticmethod
    def _normalize_records(
        chronicle: Chronicle,
        records: Union[RowValues, Sequence[RowValues]],
    ) -> List[RowValues]:
        if isinstance(records, Mapping):
            return [records]
        records = list(records)
        if records and not isinstance(records[0], (Mapping, list, tuple, Row)):
            # A single positional record like ("alice", 3) rather than a list
            # of records.
            return [records]
        return records  # type: ignore[return-value]

    def same_group(self, *chronicles: Chronicle) -> bool:
        """Whether every argument chronicle belongs to this group."""
        return all(c.group is self for c in chronicles)

    def __repr__(self) -> str:
        return (
            f"ChronicleGroup({self.name!r}, chronicles={sorted(self.chronicles)}, "
            f"watermark={self.watermark})"
        )
