"""Chronicle model kernel: sequences, chronicles, groups, deltas.

The database façade lives in :mod:`repro.core.database`; it is imported
lazily by :mod:`repro` to keep this package cycle-free.
"""

from .chronicle import Chronicle, in_maintenance, maintenance_guard
from .delta import Delta
from .group import ChronicleGroup, chronicle_schema
from .sequence import (
    ChrononMapper,
    IdentityChronons,
    LinearChronons,
    RecordedChronons,
    SequenceIssuer,
    SequenceNumber,
)

__all__ = [
    "Chronicle",
    "ChronicleGroup",
    "chronicle_schema",
    "Delta",
    "maintenance_guard",
    "in_maintenance",
    "SequenceNumber",
    "SequenceIssuer",
    "ChrononMapper",
    "IdentityChronons",
    "LinearChronons",
    "RecordedChronons",
]
