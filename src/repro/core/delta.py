"""Delta batches: the change sets flowing through incremental maintenance.

A :class:`Delta` is the set of tuples inserted into one chronicle-algebra
(sub)expression by one append.  Theorem 4.1 (monotonicity) guarantees that
for chronicle-algebra views every delta is *insert-only* and carries only
fresh sequence numbers; both invariants are checkable via
:meth:`Delta.assert_fresh`.

Deltas are deliberately tiny — a schema and a tuple of rows — because the
whole point of the chronicle algebra is that maintenance state is bounded
by the delta, not by the chronicle or the view (Theorem 4.2's space
bound).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..errors import SequenceOrderError
from ..relational.schema import Schema
from ..relational.tuples import Row


class Delta:
    """An insert-only change batch for one expression node.

    Parameters
    ----------
    schema:
        Schema of the expression the delta belongs to.
    rows:
        Inserted rows; deduplicated (set semantics within the delta —
        operands of a union may derive the same tuple at one sequence
        number).
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()) -> None:
        self.schema = schema
        seen = set()
        unique: List[Row] = []
        for row in rows:
            if row.values not in seen:
                seen.add(row.values)
                unique.append(row)
        self.rows: Tuple[Row, ...] = tuple(unique)

    @classmethod
    def empty(cls, schema: Schema) -> "Delta":
        return cls(schema, ())

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def sequence_numbers(self) -> Tuple[int, ...]:
        """The distinct sequence numbers appearing in the delta."""
        seq = self.schema.sequence_attribute
        if seq is None:
            return ()
        position = self.schema.position(seq)
        return tuple(sorted({row.values[position] for row in self.rows}))

    def assert_fresh(self, watermark_before: int) -> None:
        """Check the Theorem 4.1 invariant: only new sequence numbers.

        *watermark_before* is the group watermark before the append that
        produced this delta; every sequence number in the delta must
        exceed it.
        """
        for sn in self.sequence_numbers():
            if sn <= watermark_before:
                raise SequenceOrderError(
                    f"delta carries stale sequence number {sn} "
                    f"(watermark before append was {watermark_before}); "
                    f"monotonicity (Theorem 4.1) violated"
                )

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Delta({len(self.rows)} rows, schema={self.schema.names})"
