"""Database configuration: one frozen object instead of keyword sprawl.

Three PRs of organic growth left :class:`~repro.core.database
.ChronicleDatabase` accepting a grab-bag of keywords (``prefilter_views``,
``compile_views``, ``observe``, …).  :class:`DatabaseConfig` replaces them
with a single immutable value object that also carries the engine
selection knobs of the sharded maintenance engine
(:mod:`repro.parallel`)::

    from repro import ChronicleDatabase, DatabaseConfig

    db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=4))

The legacy keywords keep working for one release through a shim that
emits :class:`DeprecationWarning` and maps onto the config (see
``docs/api.md`` for the migration table).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Optional

from ..errors import ConfigError
from ..obs.health import SloPolicy

#: Supported maintenance engines.
ENGINES = ("serial", "sharded")

#: Supported shard executors (sharded engine only).
EXECUTORS = ("thread", "serial", "process")

#: Supported auditor modes (observability).
AUDIT_MODES = ("off", "warn", "raise")

#: Supported durability modes.
DURABILITY_MODES = ("off", "wal", "wal+snapshot")

#: Supported WAL fsync policies.
FSYNC_POLICIES = ("always", "batch", "off")


@dataclass(frozen=True)
class DurabilityConfig:
    """Immutable durability knobs of a :class:`ChronicleDatabase`.

    Parameters
    ----------
    mode:
        ``"off"`` — no durability, the hot path is untouched (default);
        ``"wal"`` — every admitted batch is written to the append-ahead
        log before maintenance applies it; ``"wal+snapshot"`` — the WAL
        plus periodic watermark-stamped view snapshots, after which the
        log tail is truncated (bounded recovery and bounded disk).
    dir:
        Directory holding the database's durability file (one SQLite
        file per database, ``wal`` journal mode).  Required whenever
        *mode* is not ``"off"``; created on first use.
    fsync:
        ``"always"`` — fsync per logged batch (synchronous=FULL);
        ``"batch"`` — commit per batch without per-batch fsync
        (synchronous=NORMAL; durable against process crash, the OS page
        cache bounds loss on power failure; fsync happens at snapshot,
        ``flush()``, and ``close()``); ``"off"`` — no sync at all
        (benchmarking only).
    snapshot_interval_batches:
        In ``"wal+snapshot"`` mode, take a snapshot every N logged
        batches (N >= 1).
    """

    mode: str = "off"
    dir: Optional[str] = None
    fsync: str = "batch"
    snapshot_interval_batches: int = 512

    def __post_init__(self) -> None:
        if self.mode not in DURABILITY_MODES:
            raise ConfigError(
                f"unknown durability mode {self.mode!r}; "
                f"expected one of {DURABILITY_MODES}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigError(
                f"unknown fsync policy {self.fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.dir is not None and not isinstance(self.dir, str):
            raise ConfigError(
                f"durability dir must be a path string or None, got {self.dir!r}"
            )
        if self.mode != "off" and not self.dir:
            raise ConfigError(
                f"durability mode {self.mode!r} requires dir to be set"
            )
        if (
            not isinstance(self.snapshot_interval_batches, int)
            or isinstance(self.snapshot_interval_batches, bool)
            or self.snapshot_interval_batches < 1
        ):
            raise ConfigError(
                "snapshot_interval_batches must be a positive int, got "
                f"{self.snapshot_interval_batches!r}"
            )

    def replace(self, **changes: Any) -> "DurabilityConfig":
        """A copy of this config with *changes* applied (validated)."""
        unknown = set(changes) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigError(f"unknown config fields {sorted(unknown)}")
        return replace(self, **changes)


@dataclass(frozen=True)
class HistoryConfig:
    """Immutable metrics-history (timeline) knobs.

    Consulted only when observability is on: with ``observe=False`` (and
    no handle passed in) no sampler exists — zero threads, zero
    allocations, byte-identical hot path.

    Parameters
    ----------
    enabled:
        Start the :class:`~repro.obs.history.MetricsHistory` daemon
        sampler alongside the observability handle (default on; it is
        inert without ``observe=True``).
    sample_interval_seconds:
        Cadence of the sampler thread (> 0).
    capacity:
        Ring bound in samples (>= 2); the default 720 holds 12 minutes
        at the 1-second cadence.
    """

    enabled: bool = True
    sample_interval_seconds: float = 1.0
    capacity: int = 720

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigError(
                f"history enabled must be a bool, got {self.enabled!r}"
            )
        if (
            isinstance(self.sample_interval_seconds, bool)
            or not isinstance(self.sample_interval_seconds, (int, float))
            or not self.sample_interval_seconds > 0
        ):
            raise ConfigError(
                "sample_interval_seconds must be a positive number, got "
                f"{self.sample_interval_seconds!r}"
            )
        if (
            not isinstance(self.capacity, int)
            or isinstance(self.capacity, bool)
            or self.capacity < 2
        ):
            raise ConfigError(
                f"history capacity must be an int >= 2, got {self.capacity!r}"
            )

    def replace(self, **changes: Any) -> "HistoryConfig":
        """A copy of this config with *changes* applied (validated)."""
        unknown = set(changes) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigError(f"unknown config fields {sorted(unknown)}")
        return replace(self, **changes)


@dataclass(frozen=True)
class DatabaseConfig:
    """Immutable configuration of a :class:`ChronicleDatabase`.

    Parameters
    ----------
    engine:
        ``"serial"`` — the classic single-threaded maintenance path —
        or ``"sharded"`` — the hash-partitioned parallel engine of
        :mod:`repro.parallel` (``ChronicleDatabase(config=...)`` then
        returns a :class:`~repro.parallel.ShardedDatabase`).
    shards:
        Number of worker shards per partitionable key class (sharded
        engine only; must be >= 1).
    executor:
        How shard maintenance fans out: ``"thread"`` (a worker-thread
        pool, the default), ``"serial"`` (in-line, deterministic — for
        debugging), or ``"process"`` (worker processes holding portable
        shard replicas — true multi-core maintenance; views whose
        definitions cannot cross a process boundary fall back to the
        serial shard with a warning).
    prefilter_views:
        Enable the Section 5.2 affected-view prefilter.
    compile_views:
        Maintain views through compiled plans (:mod:`repro.algebra.plan`).
    observe:
        Create and install an :class:`~repro.obs.Observability` handle.
    audit_mode:
        Auditor mode used when *observe* builds the handle
        (``"off"`` / ``"warn"`` / ``"raise"``).
    slo:
        The :class:`~repro.obs.health.SloPolicy` health evaluation
        (``/health``, ``SHOW HEALTH``, :meth:`ChronicleDatabase.health`)
        runs against when *observe* builds the handle.  ``None`` — the
        default policy.
    relay_telemetry:
        Whether ``executor="process"`` windows carry worker-side
        telemetry (spans, metric deltas, resource readings) back to the
        parent when observability is installed.  Costs nothing while
        observability is off — the relay engages only when both switches
        are on; with it off, the cross-process payload stays the
        byte-minimal contract regardless of observability.
    aggregates:
        Aggregate registry for the view language (``None`` — a fresh
        copy of the standard registry).
    durability:
        A :class:`DurabilityConfig`.  ``None`` normalizes to the default
        (mode ``"off"``), keeping the hot path untouched.
    history:
        A :class:`HistoryConfig` for the metrics-history sampler behind
        ``/timeline``, ``/dashboard``, and ``SHOW TIMELINE``.  ``None``
        normalizes to the default (enabled, 1s cadence, 720 samples);
        it only takes effect when observability is on.
    """

    engine: str = "serial"
    shards: int = 4
    executor: str = "thread"
    prefilter_views: bool = True
    compile_views: bool = True
    observe: bool = False
    audit_mode: str = "warn"
    slo: Optional[SloPolicy] = None
    relay_telemetry: bool = True
    aggregates: Optional[Any] = field(default=None, compare=False)
    durability: Optional[DurabilityConfig] = None
    history: Optional[HistoryConfig] = None

    def __post_init__(self) -> None:
        if self.durability is None:
            object.__setattr__(self, "durability", DurabilityConfig())
        elif not isinstance(self.durability, DurabilityConfig):
            raise ConfigError(
                "durability must be a DurabilityConfig or None, got "
                f"{type(self.durability).__name__}"
            )
        if self.history is None:
            object.__setattr__(self, "history", HistoryConfig())
        elif not isinstance(self.history, HistoryConfig):
            raise ConfigError(
                "history must be a HistoryConfig or None, got "
                f"{type(self.history).__name__}"
            )
        if self.slo is not None and not isinstance(self.slo, SloPolicy):
            raise ConfigError(
                f"slo must be an SloPolicy or None, got {type(self.slo).__name__}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        if self.audit_mode not in AUDIT_MODES:
            raise ConfigError(
                f"unknown audit_mode {self.audit_mode!r}; "
                f"expected one of {AUDIT_MODES}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigError(f"shards must be a positive int, got {self.shards!r}")
        if not isinstance(self.relay_telemetry, bool):
            raise ConfigError(
                f"relay_telemetry must be a bool, got {self.relay_telemetry!r}"
            )

    def replace(self, **changes: Any) -> "DatabaseConfig":
        """A copy of this config with *changes* applied (validated)."""
        unknown = set(changes) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigError(f"unknown config fields {sorted(unknown)}")
        return replace(self, **changes)
