"""The chronicle database: the quadruple (C, R, L, V) of Definition 2.1.

:class:`ChronicleDatabase` is the user-facing façade assembling the whole
system:

* **C** — chronicles, organized into chronicle groups with shared
  sequence-number domains;
* **R** — relations, wrapped in :class:`~repro.relational.versioned
  .VersionedRelation` so that only proactive updates are possible
  (Section 2.3);
* **L** — the view-definition language: either the SQL-like text language
  (:mod:`repro.query`) or programmatic :class:`~repro.sca.summarize
  .Summary` objects;
* **V** — persistent views, maintained through the
  :class:`~repro.views.registry.ViewRegistry` (with affected-view
  filtering) on every append.

Typical use::

    db = ChronicleDatabase()
    db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
    db.create_relation("customers", [("acct", "INT"), ("name", "STR")], key=["acct"])
    db.define_view(\"\"\"
        DEFINE VIEW balance AS
        SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct
    \"\"\")
    db.append("flights", {"acct": 7, "miles": 250})
    db.view("balance").value((7,), "balance")
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..aggregates.registry import AggregateRegistry, default_registry
from ..errors import ChronicleGroupError, ViewRegistrationError
from ..obs import Observability
from ..query.compiler import Catalog, Compiler
from ..relational.schema import Schema
from ..relational.tuples import Row
from ..relational.versioned import VersionedRelation
from ..sca.summarize import Summary
from ..sca.view import PersistentView
from ..views.periodic import PeriodicViewSet
from ..views.registry import ViewRegistry
from .chronicle import Chronicle, RowValues
from .group import ChronicleGroup
from .sequence import ChrononMapper, SequenceNumber

DEFAULT_GROUP = "default"


class ChronicleDatabase:
    """A chronicle database system (C, R, L, V).

    Parameters
    ----------
    prefilter_views:
        Enable the Section 5.2 affected-view prefilter in the registry.
    compile_views:
        Maintain views through compiled plans (structural interning +
        fused delta pipelines, see :mod:`repro.algebra.plan`) — the
        default.  Pass ``False`` to fall back to the tree-walking
        interpreter, e.g. to compare the two engines.
    aggregates:
        Aggregate registry for the view language; defaults to a fresh
        copy of the standard registry.
    observe:
        Create and install an :class:`~repro.obs.Observability` instance
        (tracing + metrics + warn-mode auditor) for this database.  Off
        by default — the maintenance pipeline then runs with the no-op
        fast path and zero instrumentation cost.
    observability:
        Install a pre-configured :class:`~repro.obs.Observability`
        instead (implies *observe*).  Note the runtime slot is
        process-wide, like ``GLOBAL_COUNTERS``: the installed instance
        observes every database in the process.
    """

    def __init__(
        self,
        prefilter_views: bool = True,
        compile_views: bool = True,
        aggregates: Optional[AggregateRegistry] = None,
        observe: bool = False,
        observability: Optional[Observability] = None,
    ) -> None:
        self.groups: Dict[str, ChronicleGroup] = {}
        self.relations: Dict[str, VersionedRelation] = {}
        self.registry = ViewRegistry(prefilter=prefilter_views, compile=compile_views)
        self.aggregates = aggregates if aggregates is not None else default_registry()
        self._chronicle_group: Dict[str, str] = {}  # chronicle name -> group name
        self._observability: Optional[Observability] = None
        if observability is not None or observe:
            self.enable_observability(observability)

    # -- observability --------------------------------------------------------------

    @property
    def observability(self) -> Optional[Observability]:
        """The database's observability handle (None when never enabled)."""
        return self._observability

    def enable_observability(
        self, obs: Optional[Observability] = None, install: bool = True, **config: Any
    ) -> Observability:
        """Install (or re-install) observability for this database.

        *obs* is an existing :class:`~repro.obs.Observability`; with
        ``None`` one is built from *config* (``trace``,
        ``trace_operators``, ``audit``, ``view_read_limit``, ``ring``) —
        or the previously enabled handle is re-installed when no config
        is given.  With ``install=False`` the handle is attached to the
        database but not published to the process-wide runtime slot
        (callers then scope it themselves with
        :func:`repro.obs.runtime.installed` — the CLI does this per
        statement).
        """
        if obs is None:
            obs = (
                self._observability
                if self._observability is not None and not config
                else Observability(**config)
            )
        self._observability = obs
        return obs.install() if install else obs

    def disable_observability(self) -> None:
        """Withdraw this database's observability (keeps the handle)."""
        if self._observability is not None:
            self._observability.uninstall()

    def certify_view(self, name: str, samples: int = 5, **sweep: Any) -> Any:
        """Run a conformance sweep against one registered view.

        Builds a :class:`~repro.obs.conformance.ConformanceProfiler`,
        drives the scaling sweeps (which **append drive records** to the
        view's chronicle — use a scratch database), and returns the
        :class:`~repro.obs.conformance.ConformanceCertificate`.  The
        certificate is also published on this database's observability
        handle (when one exists), where the ``/certificates`` HTTP route
        serves it.  Extra keyword arguments go to
        :meth:`~repro.obs.conformance.ConformanceProfiler.certify`
        (``c_sizes``, ``r_sizes``, ``u_sizes``, ``record_factory``, …).
        """
        from ..obs.conformance import ConformanceProfiler

        return ConformanceProfiler(self, samples=samples).certify(name, **sweep)

    def certify_views(self, samples: int = 5, **sweep: Any) -> Dict[str, Any]:
        """Certify every registered view; returns name → certificate."""
        from ..obs.conformance import ConformanceProfiler

        return ConformanceProfiler(self, samples=samples).certify_all(**sweep)

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1") -> Any:
        """Start the live HTTP exporter for this database's observability.

        Enables observability (installing it) if it is not enabled yet,
        then serves ``/metrics`` (Prometheus text), ``/certificates``,
        and ``/snapshot`` on *port* (0 = ephemeral).  Returns the
        :class:`~repro.obs.exporters.MetricsServer`.
        """
        obs = self._observability
        if obs is None:
            obs = self.enable_observability()
        return obs.serve(port=port, host=host)

    # -- catalog --------------------------------------------------------------------

    def create_group(
        self,
        name: str,
        chronons: Optional[ChrononMapper] = None,
        start: SequenceNumber = 0,
    ) -> ChronicleGroup:
        """Create a chronicle group (a fresh sequence-number domain)."""
        if name in self.groups:
            raise ChronicleGroupError(f"group {name!r} already exists")
        group = ChronicleGroup(name, chronons=chronons, start=start)
        group.subscribe(self.registry.on_event)
        self.groups[name] = group
        return group

    def group(self, name: str = DEFAULT_GROUP) -> ChronicleGroup:
        """Fetch a group, lazily creating the default group."""
        if name not in self.groups:
            if name == DEFAULT_GROUP:
                return self.create_group(name)
            raise ChronicleGroupError(f"no group named {name!r}")
        return self.groups[name]

    def create_chronicle(
        self,
        name: str,
        schema: Union[Schema, Sequence[Tuple[str, Any]]],
        retention: Optional[int] = None,
        group: str = DEFAULT_GROUP,
    ) -> Chronicle:
        """Create a chronicle in *group* (created on demand)."""
        if name in self._chronicle_group:
            raise ChronicleGroupError(f"chronicle {name!r} already exists")
        if name in self.relations:
            raise ChronicleGroupError(f"{name!r} already names a relation")
        chronicle = self.group(group).create_chronicle(name, schema, retention=retention)
        self._chronicle_group[name] = group
        return chronicle

    def chronicle(self, name: str) -> Chronicle:
        """Fetch a chronicle by name."""
        group_name = self._chronicle_group.get(name)
        if group_name is None:
            raise ChronicleGroupError(f"no chronicle named {name!r}")
        return self.groups[group_name][name]

    def create_relation(
        self,
        name: str,
        schema: Union[Schema, Sequence[Tuple[str, Any]]],
        key: Optional[Sequence[str]] = None,
        group: str = DEFAULT_GROUP,
        keep_history: bool = True,
    ) -> VersionedRelation:
        """Create a relation whose proactivity watermark tracks *group*."""
        if name in self.relations:
            raise ChronicleGroupError(f"relation {name!r} already exists")
        if name in self._chronicle_group:
            raise ChronicleGroupError(f"{name!r} already names a chronicle")
        if not isinstance(schema, Schema):
            schema = Schema.build(*schema, key=list(key) if key else None)
        owner = self.group(group)
        relation = VersionedRelation(
            name, schema, watermark=lambda: owner.watermark, keep_history=keep_history
        )
        self.relations[name] = relation
        return relation

    def relation(self, name: str) -> VersionedRelation:
        """Fetch a relation by name."""
        try:
            return self.relations[name]
        except KeyError:
            raise ChronicleGroupError(f"no relation named {name!r}") from None

    def catalog(self) -> Catalog:
        """A name-resolution catalog over the current chronicles/relations."""
        chronicles = {
            name: self.groups[group][name]
            for name, group in self._chronicle_group.items()
        }
        return Catalog(chronicles, dict(self.relations))

    # -- view definition (the language L) -----------------------------------------------

    def define_view(
        self,
        definition: Union[str, Summary],
        name: Optional[str] = None,
        materialize: bool = True,
    ) -> Union[PersistentView, PeriodicViewSet]:
        """Define and register a persistent view.

        *definition* is either ``DEFINE [PERIODIC] VIEW`` text or a
        programmatic :class:`Summary` (then *name* is required).  With
        *materialize*, the view is initialized from currently stored
        chronicle history ("materialized when it is initially defined",
        Section 2.1).  ``DEFINE PERIODIC VIEW name OVER …`` statements
        return the :class:`PeriodicViewSet` (Section 5.1); the OVER
        grammar is ``(EVERY w | WINDOW w [SLIDE s]) [STARTING o]
        [EXPIRE AFTER e] [BY column]``.
        """
        if isinstance(definition, str):
            compiler = Compiler(self.catalog(), self.aggregates)
            compiled = compiler.compile_definition(definition)
            if compiled.is_periodic:
                return self._define_periodic_from_compiled(compiled, name)
            view_name, summary = compiled.name, compiled.summary
            if name is not None:
                view_name = name
        else:
            if name is None:
                raise ViewRegistrationError("a programmatic view needs a name")
            view_name, summary = name, definition
        view = PersistentView(view_name, summary)
        self.registry.register(view)
        if materialize:
            chronicles = summary.expression.chronicles()
            if any(c.appended_count and c.retention != 0 for c in chronicles):
                view.initialize_from_store()
        return view

    def _define_periodic_from_compiled(
        self, compiled: Any, name: Optional[str]
    ) -> PeriodicViewSet:
        from ..views.calendar import PeriodicCalendar

        spec = compiled.periodic
        calendar = PeriodicCalendar(spec.origin, spec.width, stride=spec.stride)
        view_set = PeriodicViewSet(
            name or compiled.name,
            compiled.summary,
            calendar,
            chronon_of=compiled.chronon_of,
            expire_after=spec.expire_after,
        )
        chronicles = compiled.summary.expression.chronicles()
        owner = chronicles[0].group
        self.registry.register_periodic(view_set, owner)
        return view_set

    def define_periodic_view(
        self,
        name: str,
        definition: Union[str, Summary],
        calendar: Any,
        group: str = DEFAULT_GROUP,
        chronon_of: Optional[Any] = None,
        expire_after: Optional[float] = None,
        on_expire: Optional[Any] = None,
    ) -> PeriodicViewSet:
        """Define a periodic view V⟨D⟩ over *calendar* (Section 5.1)."""
        if isinstance(definition, str):
            compiler = Compiler(self.catalog(), self.aggregates)
            _, summary = compiler.compile_view(definition)
        else:
            summary = definition
        view_set = PeriodicViewSet(
            name,
            summary,
            calendar,
            chronon_of=chronon_of,
            expire_after=expire_after,
            on_expire=on_expire,
        )
        self.registry.register_periodic(view_set, self.group(group))
        return view_set

    def drop_view(self, name: str) -> None:
        """Unregister a persistent or periodic view."""
        self.registry.unregister(name)

    def view(self, name: str) -> PersistentView:
        """Fetch a registered persistent view."""
        return self.registry.view(name)

    def periodic_view(self, name: str) -> PeriodicViewSet:
        """Fetch a registered periodic view set."""
        return self.registry.periodic(name)

    # -- updates -------------------------------------------------------------------------

    def append(
        self,
        chronicle: str,
        records: Union[RowValues, Sequence[RowValues]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Tuple[Row, ...]:
        """Append one transaction batch; persistent views update before
        this call returns (the ATM requirement of Section 1)."""
        group_name = self._chronicle_group.get(chronicle)
        if group_name is None:
            raise ChronicleGroupError(f"no chronicle named {chronicle!r}")
        return self.groups[group_name].append(
            chronicle, records, sequence_number=sequence_number, instant=instant
        )

    def append_simultaneous(
        self,
        batches: Mapping[str, Union[RowValues, Sequence[RowValues]]],
        group: str = DEFAULT_GROUP,
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Dict[str, Tuple[Row, ...]]:
        """Append to several chronicles at one sequence number."""
        return self.group(group).append_simultaneous(
            batches, sequence_number=sequence_number, instant=instant
        )

    def update_relation(self, name: str, key: Sequence[Any], **changes: Any) -> bool:
        """Proactively update a relation row (Section 2.3)."""
        return self.relation(name).update_key(key, **changes)

    # -- queries ---------------------------------------------------------------------------

    def query_view(self, name: str, key: Sequence[Any]) -> Optional[Row]:
        """Summary query: the view row at *key* — no chronicle access."""
        return self.view(name).lookup(key)

    def view_value(self, name: str, key: Sequence[Any], output: str) -> Any:
        """Summary query returning a single output attribute."""
        return self.view(name).value(key, output)

    def detail_window(
        self, chronicle: str, low: Optional[int] = None, high: Optional[int] = None
    ) -> List[Row]:
        """Detail query over a chronicle's retained window (Section 2.2)."""
        return self.chronicle(chronicle).window(low, high)

    # -- durability --------------------------------------------------------------------

    def checkpoint(self, path: str) -> None:
        """Write a durable snapshot of watermarks, relations, and views.

        Chronicles themselves are streams and are not stored; the views'
        materialized rows and aggregate accumulators — the only copy of
        the summarized history — are what the checkpoint protects.
        """
        from ..storage.checkpoint import checkpoint_database

        checkpoint_database(self, path)

    def restore(self, path: str) -> None:
        """Restore view/relation state from :meth:`checkpoint` output.

        The database must first be re-declared to the same shape (groups,
        relations, view definitions); define views with
        ``materialize=False`` since their state comes from the checkpoint.
        """
        from ..storage.checkpoint import restore_database

        restore_database(self, path)

    def __repr__(self) -> str:
        return (
            f"ChronicleDatabase(groups={sorted(self.groups)}, "
            f"chronicles={sorted(self._chronicle_group)}, "
            f"relations={sorted(self.relations)}, views={len(self.registry)})"
        )
