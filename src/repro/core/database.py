"""The chronicle database: the quadruple (C, R, L, V) of Definition 2.1.

:class:`ChronicleDatabase` is the user-facing façade assembling the whole
system:

* **C** — chronicles, organized into chronicle groups with shared
  sequence-number domains;
* **R** — relations, wrapped in :class:`~repro.relational.versioned
  .VersionedRelation` so that only proactive updates are possible
  (Section 2.3);
* **L** — the view-definition language: either the SQL-like text language
  (:mod:`repro.query`) or programmatic :class:`~repro.sca.summarize
  .Summary` objects;
* **V** — persistent views, maintained through the
  :class:`~repro.views.registry.ViewRegistry` (with affected-view
  filtering) on every append.

Typical use::

    db = ChronicleDatabase()
    db.create_chronicle("flights", [("acct", "INT"), ("miles", "INT")])
    db.create_relation("customers", [("acct", "INT"), ("name", "STR")], key=["acct"])
    db.define_view(\"\"\"
        DEFINE VIEW balance AS
        SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct
    \"\"\")
    db.append("flights", {"acct": 7, "miles": 250})
    db.view("balance").value((7,), "balance")
"""

from __future__ import annotations

import warnings
import weakref
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..aggregates.registry import default_registry
from ..errors import ChronicleGroupError, ObservabilityError, ViewRegistrationError
from ..obs import Observability
from ..query.compiler import Catalog, Compiler
from ..relational.schema import Schema
from ..relational.tuples import Row
from ..relational.versioned import VersionedRelation
from ..sca.summarize import Summary
from ..sca.view import PersistentView
from ..views.periodic import PeriodicViewSet
from ..views.registry import ViewRegistry
from .chronicle import Chronicle, RowValues
from .config import DatabaseConfig
from .group import ChronicleGroup
from .sequence import ChrononMapper, SequenceNumber

DEFAULT_GROUP = "default"

#: Sentinel distinguishing "not passed" from explicit values in the
#: deprecated keyword shim.
_UNSET: Any = object()


def _resolve_config(config: Optional[DatabaseConfig], legacy: Dict[str, Any]) -> DatabaseConfig:
    """Merge the config object with any deprecated legacy keywords."""
    used = {name: value for name, value in legacy.items() if value is not _UNSET}
    if used:
        warnings.warn(
            f"ChronicleDatabase keyword(s) {sorted(used)} are deprecated; "
            f"pass config=DatabaseConfig(...) instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=3,
        )
    if config is None:
        config = DatabaseConfig()
    return config.replace(**used) if used else config


class ChronicleDatabase:
    """A chronicle database system (C, R, L, V).

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.DatabaseConfig`.  With
        ``engine="sharded"`` this constructor returns a
        :class:`~repro.parallel.ShardedDatabase` (the parallel
        maintenance engine); the default is the serial engine.
    observability:
        Install a pre-configured :class:`~repro.obs.Observability`
        (implies ``config.observe``).  Note the runtime slot is
        process-wide, like ``GLOBAL_COUNTERS``: the installed instance
        observes every database in the process.
    prefilter_views, compile_views, aggregates, observe:
        **Deprecated** keyword shims for the pre-config API; each maps
        onto the config field of the same name and emits a
        :class:`DeprecationWarning` (see ``docs/api.md`` for the
        migration table).
    """

    def __new__(cls, config: Optional[DatabaseConfig] = None, **kwargs: Any) -> "ChronicleDatabase":
        if (
            cls is ChronicleDatabase
            and config is not None
            and config.engine == "sharded"
        ):
            from ..parallel.engine import ShardedDatabase

            return super().__new__(ShardedDatabase)
        return super().__new__(cls)

    def __init__(
        self,
        config: Optional[DatabaseConfig] = None,
        *,
        observability: Optional[Observability] = None,
        prefilter_views: Any = _UNSET,
        compile_views: Any = _UNSET,
        aggregates: Any = _UNSET,
        observe: Any = _UNSET,
    ) -> None:
        config = _resolve_config(
            config,
            {
                "prefilter_views": prefilter_views,
                "compile_views": compile_views,
                "aggregates": aggregates,
                "observe": observe,
            },
        )
        #: The database's immutable configuration.
        self.config = config
        self.groups: Dict[str, ChronicleGroup] = {}
        self.relations: Dict[str, VersionedRelation] = {}
        self.registry = ViewRegistry(
            prefilter=config.prefilter_views, compile=config.compile_views
        )
        self.aggregates = (
            config.aggregates if config.aggregates is not None else default_registry()
        )
        self._chronicle_group: Dict[str, str] = {}  # chronicle name -> group name
        self._observability: Optional[Observability] = None
        self._exporter_finalizer: Optional[weakref.finalize] = None
        self._history_finalizer: Optional[weakref.finalize] = None
        if observability is not None or config.observe:
            self.enable_observability(observability)
            if config.history is not None and config.history.enabled:
                self.start_history()
        #: The durability manager (None when ``config.durability`` is off —
        #: the hot path then carries no durability hooks at all).
        self._durability: Optional[Any] = None
        if config.durability is not None and config.durability.mode != "off":
            from ..storage.durability import DurabilityManager

            self._durability = DurabilityManager(self, config.durability)

    # -- observability --------------------------------------------------------------

    @property
    def observability(self) -> Optional[Observability]:
        """The database's observability handle (None when never enabled)."""
        return self._observability

    def enable_observability(
        self, obs: Optional[Observability] = None, install: bool = True, **config: Any
    ) -> Observability:
        """Install (or re-install) observability for this database.

        *obs* is an existing :class:`~repro.obs.Observability`; with
        ``None`` one is built from *config* (``trace``,
        ``trace_operators``, ``audit``, ``view_read_limit``, ``ring``) —
        or the previously enabled handle is re-installed when no config
        is given.  With ``install=False`` the handle is attached to the
        database but not published to the process-wide runtime slot
        (callers then scope it themselves with
        :func:`repro.obs.runtime.installed` — the CLI does this per
        statement).
        """
        if obs is None:
            if self._observability is not None and not config:
                obs = self._observability
            else:
                config.setdefault("audit", self.config.audit_mode)
                config.setdefault("slo", self.config.slo)
                obs = Observability(**config)
        obs.bind_database(self)
        self._observability = obs
        return obs.install() if install else obs

    def disable_observability(self) -> None:
        """Withdraw this database's observability (keeps the handle)."""
        if self._observability is not None:
            self._observability.uninstall()

    def certify_view(self, name: str, samples: int = 5, **sweep: Any) -> Any:
        """Run a conformance sweep against one registered view.

        Builds a :class:`~repro.obs.conformance.ConformanceProfiler`,
        drives the scaling sweeps (which **append drive records** to the
        view's chronicle — use a scratch database), and returns the
        :class:`~repro.obs.conformance.ConformanceCertificate`.  The
        certificate is also published on this database's observability
        handle (when one exists), where the ``/certificates`` HTTP route
        serves it.  Extra keyword arguments go to
        :meth:`~repro.obs.conformance.ConformanceProfiler.certify`
        (``c_sizes``, ``r_sizes``, ``u_sizes``, ``record_factory``, …).
        """
        from ..obs.conformance import ConformanceProfiler

        return ConformanceProfiler(self, samples=samples).certify(name, **sweep)

    def certify_views(self, samples: int = 5, **sweep: Any) -> Dict[str, Any]:
        """Certify every registered view; returns name → certificate."""
        from ..obs.conformance import ConformanceProfiler

        return ConformanceProfiler(self, samples=samples).certify_all(**sweep)

    def explain(self, name: str, analyze: bool = False, **window: Any) -> Any:
        """Describe (and optionally measure) a view's maintenance plan.

        Returns an :class:`~repro.obs.explain.ExplainReport`: the
        compiled plan tree with fusion/sharing/partition/prefilter
        annotations.  With *analyze*, a short instrumented window of
        synthesized records is driven through the normal ingest path
        (which **appends drive records** to the view's chronicle — use
        a scratch database when that matters) and every operator is
        annotated with measured rows, wall time, and cost-counter
        work.  Extra keyword arguments go to
        :func:`~repro.obs.explain.explain_analyze` (``events``,
        ``batch``, ``record_factory``, ``chronicle``).
        """
        from ..obs.explain import explain, explain_analyze

        if analyze:
            return explain_analyze(self, name, **window)
        if window:
            raise TypeError(
                "explain() window arguments require analyze=True: "
                + ", ".join(sorted(window))
            )
        return explain(self, name)

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1") -> Any:
        """Start the live HTTP exporter for this database's observability.

        Enables observability (installing it) if it is not enabled yet,
        then serves ``/metrics`` (Prometheus text), ``/certificates``,
        ``/snapshot``, and ``/health`` on *port* (0 = ephemeral).
        Returns the :class:`~repro.obs.exporters.MetricsServer`.

        The exporter's serving thread is tied to this database's
        lifetime: :meth:`close` stops it, and a finalizer stops it if
        the database is garbage-collected while still serving.
        """
        obs = self._observability
        if obs is None:
            obs = self.enable_observability()
        server = obs.serve(port=port, host=host)
        if self._exporter_finalizer is not None:
            self._exporter_finalizer.detach()
        # The finalizer closes over the handle, not self, so it cannot
        # keep the database alive.
        self._exporter_finalizer = weakref.finalize(self, Observability.stop_serving, obs)
        return server

    def start_history(self, thread: bool = True) -> Any:
        """Start (or return) the metrics-history sampler for this database.

        Enables observability if needed, then starts the
        :class:`~repro.obs.history.MetricsHistory` ring behind
        ``/timeline``, ``/dashboard``, and ``SHOW TIMELINE``, sized by
        ``config.history``.  Like the exporter thread, the sampler is
        tied to the database's lifetime: :meth:`close` stops it and a
        finalizer catches garbage collection.  Returns the running
        sampler (the existing one if already running).
        """
        obs = self._observability
        if obs is None:
            obs = self.enable_observability()
        if obs.history is not None and obs.history.running:
            return obs.history
        settings = self.config.history
        history = obs.start_history(
            interval=settings.sample_interval_seconds,
            capacity=settings.capacity,
            thread=thread,
        )
        if self._history_finalizer is not None:
            self._history_finalizer.detach()
        # Closes over the handle, not self — cannot keep the db alive.
        self._history_finalizer = weakref.finalize(
            self, Observability.stop_history, obs
        )
        return history

    def close(self) -> None:
        """Release background resources and finalize the log (idempotent).

        With durability on, a final snapshot is taken if batches were
        logged since the last one (``wal+snapshot`` mode), the log is
        fsynced, and the durability file is closed — after which new
        appends are no longer logged.  Stops the metrics exporter's
        serving thread if one is running.  The database remains usable
        for in-process work afterwards; use the context-manager form to
        scope the exporter to a block::

            with ChronicleDatabase(...) as db:
                db.serve_metrics(port=0)
                ...
        """
        if self._durability is not None:
            self._durability.close()
        if self._exporter_finalizer is not None:
            self._exporter_finalizer.detach()
            self._exporter_finalizer = None
        if self._history_finalizer is not None:
            self._history_finalizer.detach()
            self._history_finalizer = None
        if self._observability is not None:
            self._observability.stop_serving()
            self._observability.stop_history()

    def __enter__(self) -> "ChronicleDatabase":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- catalog --------------------------------------------------------------------

    def create_group(
        self,
        name: str,
        chronons: Optional[ChrononMapper] = None,
        start: SequenceNumber = 0,
    ) -> ChronicleGroup:
        """Create a chronicle group (a fresh sequence-number domain)."""
        if name in self.groups:
            raise ChronicleGroupError(f"group {name!r} already exists")
        group = ChronicleGroup(name, chronons=chronons, start=start)
        group.subscribe(self.registry.on_event)
        self.groups[name] = group
        if self._durability is not None:
            self._durability.attach_group(group)
            if chronons is not None:
                from ..storage.durability import NonDurableWarning

                warnings.warn(
                    f"group {name!r} uses a custom chronon mapper; its state "
                    f"is not logged and will reset on recovery",
                    NonDurableWarning,
                    stacklevel=2,
                )
            self._durability.record_ddl(("group", name, start))
        return group

    def group(self, name: str = DEFAULT_GROUP) -> ChronicleGroup:
        """Fetch a group, lazily creating the default group."""
        if name not in self.groups:
            if name == DEFAULT_GROUP:
                return self.create_group(name)
            raise ChronicleGroupError(f"no group named {name!r}")
        return self.groups[name]

    def create_chronicle(
        self,
        name: str,
        schema: Union[Schema, Sequence[Tuple[str, Any]]],
        retention: Optional[int] = None,
        group: str = DEFAULT_GROUP,
    ) -> Chronicle:
        """Create a chronicle in *group* (created on demand)."""
        if name in self._chronicle_group:
            raise ChronicleGroupError(f"chronicle {name!r} already exists")
        if name in self.relations:
            raise ChronicleGroupError(f"{name!r} already names a relation")
        chronicle = self.group(group).create_chronicle(name, schema, retention=retention)
        self._chronicle_group[name] = group
        if self._durability is not None:
            from ..algebra.plan import schema_spec

            self._durability.record_ddl(
                ("chronicle", name, schema_spec(chronicle.schema), retention, group)
            )
        return chronicle

    def chronicle(self, name: str) -> Chronicle:
        """Fetch a chronicle by name."""
        group_name = self._chronicle_group.get(name)
        if group_name is None:
            raise ChronicleGroupError(f"no chronicle named {name!r}")
        return self.groups[group_name][name]

    def create_relation(
        self,
        name: str,
        schema: Union[Schema, Sequence[Tuple[str, Any]]],
        key: Optional[Sequence[str]] = None,
        group: str = DEFAULT_GROUP,
        keep_history: bool = True,
    ) -> VersionedRelation:
        """Create a relation whose proactivity watermark tracks *group*."""
        if name in self.relations:
            raise ChronicleGroupError(f"relation {name!r} already exists")
        if name in self._chronicle_group:
            raise ChronicleGroupError(f"{name!r} already names a chronicle")
        if not isinstance(schema, Schema):
            schema = Schema.build(*schema, key=list(key) if key else None)
        owner = self.group(group)
        relation = VersionedRelation(
            name, schema, watermark=lambda: owner.watermark, keep_history=keep_history
        )
        self.relations[name] = relation
        if self._durability is not None:
            from ..algebra.plan import schema_spec

            self._durability.record_ddl(
                ("relation", name, schema_spec(relation.schema), group, keep_history)
            )
        return relation

    def relation(self, name: str) -> VersionedRelation:
        """Fetch a relation by name."""
        try:
            return self.relations[name]
        except KeyError:
            raise ChronicleGroupError(f"no relation named {name!r}") from None

    def catalog(self) -> Catalog:
        """A name-resolution catalog over the current chronicles/relations."""
        chronicles = {
            name: self.groups[group][name]
            for name, group in self._chronicle_group.items()
        }
        return Catalog(chronicles, dict(self.relations))

    # -- view definition (the language L) -----------------------------------------------

    def define_view(
        self,
        definition: Union[str, Summary],
        name: Optional[str] = None,
        materialize: bool = True,
    ) -> Union[PersistentView, PeriodicViewSet]:
        """Define and register a persistent view.

        *definition* is either ``DEFINE [PERIODIC] VIEW`` text or a
        programmatic :class:`Summary` (then *name* is required).  With
        *materialize*, the view is initialized from currently stored
        chronicle history ("materialized when it is initially defined",
        Section 2.1).  ``DEFINE PERIODIC VIEW name OVER …`` statements
        return the :class:`PeriodicViewSet` (Section 5.1); the OVER
        grammar is ``(EVERY w | WINDOW w [SLIDE s]) [STARTING o]
        [EXPIRE AFTER e] [BY column]``.
        """
        if isinstance(definition, str):
            compiler = Compiler(self.catalog(), self.aggregates)
            compiled = compiler.compile_definition(definition)
            if compiled.is_periodic:
                view_set = self._define_periodic_from_compiled(compiled, name)
                if self._durability is not None:
                    self._durability.record_view_definition(
                        definition, name, materialize
                    )
                return view_set
            view_name, summary = compiled.name, compiled.summary
            if name is not None:
                view_name = name
        else:
            if name is None:
                raise ViewRegistrationError("a programmatic view needs a name")
            view_name, summary = name, definition
        view = self._register_summary(view_name, summary, materialize)
        if self._durability is not None:
            if isinstance(definition, str):
                self._durability.record_view_definition(definition, name, materialize)
            else:
                self._durability.record_view_definition(summary, view_name, materialize)
        return view

    def _register_summary(
        self, view_name: str, summary: Summary, materialize: bool
    ) -> PersistentView:
        """Register one summary as a persistent view (engine hook).

        The sharded engine overrides this to place partitionable views
        on worker shards; the serial path registers on :attr:`registry`.
        """
        view = PersistentView(view_name, summary)
        self.registry.register(view)
        if materialize:
            chronicles = summary.expression.chronicles()
            if any(c.appended_count and c.retention != 0 for c in chronicles):
                view.initialize_from_store()
        return view

    def _define_periodic_from_compiled(
        self, compiled: Any, name: Optional[str]
    ) -> PeriodicViewSet:
        from ..views.calendar import PeriodicCalendar

        spec = compiled.periodic
        calendar = PeriodicCalendar(spec.origin, spec.width, stride=spec.stride)
        view_set = PeriodicViewSet(
            name or compiled.name,
            compiled.summary,
            calendar,
            chronon_of=compiled.chronon_of,
            expire_after=spec.expire_after,
        )
        chronicles = compiled.summary.expression.chronicles()
        owner = chronicles[0].group
        self.registry.register_periodic(view_set, owner)
        if self._durability is not None:
            self._durability.seed_periodic_clock(view_set)
        return view_set

    def define_periodic_view(
        self,
        name: str,
        definition: Union[str, Summary],
        calendar: Any,
        group: str = DEFAULT_GROUP,
        chronon_of: Optional[Any] = None,
        expire_after: Optional[float] = None,
        on_expire: Optional[Any] = None,
    ) -> PeriodicViewSet:
        """Define a periodic view V⟨D⟩ over *calendar* (Section 5.1)."""
        if isinstance(definition, str):
            compiler = Compiler(self.catalog(), self.aggregates)
            _, summary = compiler.compile_view(definition)
        else:
            summary = definition
        view_set = PeriodicViewSet(
            name,
            summary,
            calendar,
            chronon_of=chronon_of,
            expire_after=expire_after,
            on_expire=on_expire,
        )
        self.registry.register_periodic(view_set, self.group(group))
        if self._durability is not None:
            from ..storage.durability import NonDurableWarning

            warnings.warn(
                f"programmatic periodic view {name!r} cannot be logged; "
                f"recovery will not rebuild it — re-define it after open() "
                f"(its clock resumes from the log's meta table)",
                NonDurableWarning,
                stacklevel=2,
            )
            self._durability.seed_periodic_clock(view_set)
        return view_set

    def drop_view(self, name: str) -> None:
        """Unregister a persistent or periodic view."""
        self.registry.unregister(name)
        if self._durability is not None:
            self._durability.record_ddl(("drop_view", name))

    def view(self, name: str) -> PersistentView:
        """Fetch a registered persistent view."""
        return self.registry.view(name)

    def periodic_view(self, name: str) -> PeriodicViewSet:
        """Fetch a registered periodic view set."""
        return self.registry.periodic(name)

    # -- updates -------------------------------------------------------------------------

    def append(
        self,
        chronicle: str,
        records: Union[RowValues, Sequence[RowValues]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Tuple[Row, ...]:
        """Append one transaction batch; persistent views update before
        this call returns (the ATM requirement of Section 1)."""
        group_name = self._chronicle_group.get(chronicle)
        if group_name is None:
            raise ChronicleGroupError(f"no chronicle named {chronicle!r}")
        rows = self.groups[group_name].append(
            chronicle, records, sequence_number=sequence_number, instant=instant
        )
        if self._durability is not None:
            self._durability.batch_committed()
        return rows

    def append_simultaneous(
        self,
        batches: Mapping[str, Union[RowValues, Sequence[RowValues]]],
        group: str = DEFAULT_GROUP,
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Dict[str, Tuple[Row, ...]]:
        """Append to several chronicles at one sequence number."""
        stamped = self.group(group).append_simultaneous(
            batches, sequence_number=sequence_number, instant=instant
        )
        if self._durability is not None:
            self._durability.batch_committed()
        return stamped

    def ingest(
        self,
        chronicle: str,
        batches: Sequence[Union[RowValues, Sequence[RowValues]]],
        instant: Optional[float] = None,
    ) -> int:
        """Append a window of transaction batches; returns records admitted.

        Each batch receives its own fresh sequence number.  On the
        serial engine every batch is its own maintenance event; the
        sharded engine overrides this with a group-commit path that
        ships each worker shard one coalesced event per window.
        """
        total = 0
        for records in batches:
            total += len(self.append(chronicle, records, instant=instant))
        return total

    def update_relation(self, name: str, key: Sequence[Any], **changes: Any) -> bool:
        """Proactively update a relation row (Section 2.3)."""
        updated = self.relation(name).update_key(key, **changes)
        if updated and self._durability is not None:
            self._durability.record_relation_update(name, key, changes)
        return updated

    # -- queries ---------------------------------------------------------------------------

    def view_row(self, name: str, key: Sequence[Any]) -> Optional[Row]:
        """Summary query: the view row at *key* — no chronicle access."""
        return self.view(name).lookup(key)

    def query_view(self, name: str, key: Sequence[Any]) -> Optional[Row]:
        """Deprecated alias of :meth:`view_row`.

        Renamed for consistency with :meth:`view_value` (both are
        summary-key point queries); retained for one release.
        """
        warnings.warn(
            "ChronicleDatabase.query_view() is deprecated; use view_row()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.view_row(name, key)

    def view_value(self, name: str, key: Sequence[Any], output: str) -> Any:
        """Summary query returning a single output attribute."""
        return self.view(name).value(key, output)

    def detail_window(
        self, chronicle: str, low: Optional[int] = None, high: Optional[int] = None
    ) -> List[Row]:
        """Detail query over a chronicle's retained window (Section 2.2)."""
        return self.chronicle(chronicle).window(low, high)

    @property
    def stats(self) -> Dict[str, Any]:
        """Maintenance/routing statistics (merged across shards when sharded)."""
        return self.registry.stats

    def watermarks(self) -> Dict[str, Any]:
        """Per-group admission watermarks (per-shard too when sharded)."""
        return {
            f"serial/{name}": group.watermark for name, group in self.groups.items()
        }

    # -- health & incidents ------------------------------------------------------------

    def health(self) -> Any:
        """Evaluate this database's SLO policy; returns a HealthReport.

        Requires observability to be enabled (``observe=True`` or
        :meth:`enable_observability`) — health is defined over the
        metrics, auditor, and shard watermarks that layer collects.
        """
        obs = self._observability
        if obs is None:
            raise ObservabilityError(
                "health requires observability; enable it with "
                "ChronicleDatabase(config=DatabaseConfig(observe=True)) "
                "or db.enable_observability()"
            )
        return obs.health()

    def dump_incident(
        self, reason: str = "manual", path: Optional[str] = None
    ) -> Optional[str]:
        """Pull the flight-recorder tape by hand; returns the bundle path.

        Captures the recorder ring plus watermarks, registry stats, and
        the metrics snapshot into a JSON incident bundle — the same
        bundle automatic triggers (auditor violation, shard-worker
        error, SLO breach) write.  With *path* the bundle goes exactly
        there; otherwise it lands in the observability handle's
        ``incident_dir`` (``None`` means nothing is written and ``None``
        is returned — the trigger still lands in the ring).
        """
        obs = self._observability
        if obs is None:
            raise ObservabilityError(
                "dump_incident requires observability; enable it with "
                "db.enable_observability()"
            )
        return obs.incident(reason, path=path)

    # -- durability --------------------------------------------------------------------

    @classmethod
    def open(
        cls, path: str, config: Optional[DatabaseConfig] = None
    ) -> "ChronicleDatabase":
        """Open a durable database at *path*: recover-or-create.

        *path* is the durability directory (created on first use).  When
        it already holds durable state, the catalog is rebuilt from the
        logged DDL, the latest watermark-stamped snapshot is loaded, and
        the log tail replays through the normal maintenance path before
        the database is returned; otherwise a fresh durable database is
        created.  *config* selects the engine and all other knobs; its
        ``durability.dir`` is overridden by *path*, and a mode of
        ``"off"`` is promoted to ``"wal+snapshot"`` (opening a database
        is an explicit request for durability).
        """
        from ..storage.durability import open_database

        if config is None:
            config = DatabaseConfig()
        durability = config.durability
        if durability.mode == "off":
            durability = durability.replace(mode="wal+snapshot", dir=path)
        else:
            durability = durability.replace(dir=path)
        return open_database(config.replace(durability=durability))

    @property
    def durability(self) -> Optional[Any]:
        """The durability manager (None when durability is off)."""
        return self._durability

    def flush(self) -> None:
        """Force the append-ahead log to durable storage (fsync barrier).

        With ``fsync="batch"`` the log is committed per batch but only
        fsynced at snapshots and here; ``flush()`` is the explicit
        durability barrier.  No-op when durability is off.
        """
        if self._durability is not None:
            self._durability.flush()

    def checkpoint(self, path: str) -> None:
        """Write a durable snapshot of watermarks, relations, and views.

        Chronicles themselves are streams and are not stored; the views'
        materialized rows and aggregate accumulators — the only copy of
        the summarized history — are what the checkpoint protects.  The
        durability subsystem's periodic snapshots use this same codec;
        an explicit checkpoint works with or without durability on.
        """
        from ..storage.checkpoint import write_checkpoint

        write_checkpoint(self, path)

    def restore(self, source: Any) -> None:
        """Restore view/relation state from :meth:`checkpoint` output.

        *source* is a path, an open text file, or an already-parsed
        checkpoint document.  The database must first be re-declared to
        the same shape (groups, relations, view definitions); define
        views with ``materialize=False`` since their state comes from
        the checkpoint.
        """
        from ..storage.checkpoint import load_checkpoint

        load_checkpoint(self, source)

    def _replay_stamped(
        self,
        group: ChronicleGroup,
        event: Mapping[str, Tuple[Row, ...]],
        watermark: SequenceNumber,
    ) -> None:
        """Recovery hook: re-apply one logged batch (engine-specific).

        The serial engine absorbs the event through the group-commit
        path when the group's watermark is still behind it — replay past
        the watermark, skip what a snapshot already covers.  The sharded
        engine overrides this to also route the event to the shards that
        are still behind.
        """
        if watermark > group.watermark:
            group.ingest_stamped(event, watermark)

    def __repr__(self) -> str:
        return (
            f"ChronicleDatabase(groups={sorted(self.groups)}, "
            f"chronicles={sorted(self._chronicle_group)}, "
            f"relations={sorted(self.relations)}, views={len(self.registry)})"
        )
