"""Chronicles: unbounded, append-only sequences of transaction records.

A chronicle is "similar to a relation, except that a chronicle is a
sequence, rather than an unordered set, of tuples … The only update
permissible to a chronicle is an insertion of tuples, with the sequence
number of the inserted tuples being greater than any existing sequence
number" (Section 2.1).  Chronicles can be very large and *the entire
chronicle may not be stored*; accordingly a :class:`Chronicle` has a
retention policy:

* ``retention=None`` — store everything (testing/oracle use);
* ``retention=0``    — store nothing (a pure stream);
* ``retention=n``    — keep only the latest *n* tuples (the paper's
  "latest time window").

The **no-access rule** of Theorems 4.2/4.4 — incremental maintenance may
not read the chronicle — is enforced mechanically: while the maintenance
guard (:func:`maintenance_guard`) is active, every read method raises
:class:`~repro.errors.ChronicleAccessError`.  Tests run whole workloads
with ``retention=0`` to prove maintenance never needed the store.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Iterator, List, Mapping, Optional, Sequence, Union

from ..complexity.counters import GLOBAL_COUNTERS
from ..obs import runtime as obs_runtime
from ..errors import (
    ChronicleAccessError,
    RetentionError,
    SchemaError,
    UnknownAttributeError,
)
from ..relational.schema import Schema
from ..relational.tuples import Row
from .sequence import SequenceNumber

RowValues = Union[Mapping[str, Any], Sequence[Any]]

# Depth of nested maintenance sections currently active.  Thread-local:
# the guard marks a *dynamic extent*, and with the sharded engine several
# worker threads maintain views concurrently — each worker's guard must
# cover its own maintenance only (an unguarded reader thread may read
# freely while another thread maintains).  A module-global counter would
# also corrupt under concurrent non-atomic +=/-=.
_MAINTENANCE = threading.local()


@contextmanager
def maintenance_guard() -> Iterator[None]:
    """Mark a dynamic extent as incremental-maintenance code.

    While active, any chronicle read *on this thread* raises
    :class:`~repro.errors.ChronicleAccessError` — the mechanical proof
    that maintenance ran without chronicle access.
    """
    _MAINTENANCE.depth = getattr(_MAINTENANCE, "depth", 0) + 1
    try:
        yield
    finally:
        _MAINTENANCE.depth -= 1


def in_maintenance() -> bool:
    """Whether maintenance code is executing on the current thread."""
    return getattr(_MAINTENANCE, "depth", 0) > 0


class Chronicle:
    """An append-only sequence of records with bounded retention.

    Chronicles are created through
    :meth:`repro.core.group.ChronicleGroup.create_chronicle`, which wires
    the shared sequence-number domain; direct construction is available
    for tests.

    Parameters
    ----------
    name:
        Chronicle name.
    schema:
        A chronicle schema (must declare a sequencing attribute).  Pass a
        plain relation schema together with *sequence_attribute* to have
        the SEQ column added implicitly.
    retention:
        See module docstring.
    """

    __slots__ = ("name", "schema", "retention", "_stored", "_appended", "_seq_position", "group")

    def __init__(
        self,
        name: str,
        schema: Schema,
        retention: Optional[int] = None,
    ) -> None:
        if not schema.is_chronicle_schema:
            raise SchemaError(
                f"chronicle {name!r} requires a schema with a sequencing attribute"
            )
        if retention is not None and retention < 0:
            raise ValueError("retention must be None or >= 0")
        self.name = name
        self.schema = schema
        self.retention = retention
        self._stored: Deque[Row] = deque()
        self._appended = 0  # lifetime count, independent of retention
        self._seq_position = schema.position(schema.sequence_attribute)
        #: Back-reference set by the owning group.
        self.group = None

    # -- append path -------------------------------------------------------------

    def _admit(self, values: RowValues, sequence_number: SequenceNumber) -> Row:
        """Validate one record and stamp it with *sequence_number*.

        Accepts mappings or positional sequences that either include or
        omit the sequencing attribute; an included value must match the
        stamp (records cannot choose their own sequence numbers).
        """
        seq_name = self.schema.sequence_attribute
        if isinstance(values, Mapping):
            payload = dict(values)
            supplied = payload.get(seq_name)
            if supplied is not None and supplied != sequence_number:
                raise SchemaError(
                    f"record supplies sequence number {supplied}, but the "
                    f"group stamped {sequence_number}"
                )
            payload[seq_name] = sequence_number
            return Row.from_mapping(self.schema, payload)
        values = list(values)
        if len(values) == len(self.schema) - 1:
            values.insert(self._seq_position, sequence_number)
        elif len(values) == len(self.schema):
            supplied = values[self._seq_position]
            if supplied is not None and supplied != sequence_number:
                raise SchemaError(
                    f"record supplies sequence number {supplied}, but the "
                    f"group stamped {sequence_number}"
                )
            values[self._seq_position] = sequence_number
        return Row(self.schema, values)

    def _admit_batch(
        self, records: Sequence[RowValues], sequence_number: SequenceNumber
    ) -> List[Row]:
        """Validate and stamp a whole batch in one pass (fast path).

        Semantically identical to calling :meth:`_admit` per record, but
        the per-record overhead is gone: the schema's cached name set
        replaces per-row set construction, values run through exactly one
        ``check_values`` pass, and rows are built with the unchecked
        constructor from the already-validated tuples.
        """
        schema = self.schema
        seq_name = schema.sequence_attribute
        seq_position = self._seq_position
        names = schema.names
        names_set = schema.names_set
        arity = len(names)
        check_values = schema.check_values
        unchecked = Row.unchecked
        rows: List[Row] = []
        for record in records:
            if isinstance(record, Mapping):
                supplied = record.get(seq_name)
                if supplied is not None and supplied != sequence_number:
                    raise SchemaError(
                        f"record supplies sequence number {supplied}, but the "
                        f"group stamped {sequence_number}"
                    )
                if len(record) > arity or (
                    len(record) == arity and seq_name not in record
                ):
                    self._reject_unknown(record, names_set)
                try:
                    values = [
                        sequence_number if name == seq_name else record[name]
                        for name in names
                    ]
                except KeyError:
                    self._reject_unknown(record, names_set)
                    raise  # unreachable: _reject_unknown raised
            else:
                values = list(record)
                if len(values) == arity - 1:
                    values.insert(seq_position, sequence_number)
                elif len(values) == arity:
                    supplied = values[seq_position]
                    if supplied is not None and supplied != sequence_number:
                        raise SchemaError(
                            f"record supplies sequence number {supplied}, but "
                            f"the group stamped {sequence_number}"
                        )
                    values[seq_position] = sequence_number
            rows.append(unchecked(schema, check_values(values)))
        obs = obs_runtime.ACTIVE
        if obs is not None:
            obs.metrics.inc(
                "chronicle_records_admitted_total", len(rows), chronicle=self.name
            )
        return rows

    @staticmethod
    def _reject_unknown(record: Mapping[str, Any], names_set: "frozenset") -> None:
        """Raise the precise admit error for a malformed mapping record."""
        extra = [name for name in record if name not in names_set]
        if extra:
            raise UnknownAttributeError(
                f"values supplied for unknown attributes {sorted(extra)}"
            )
        missing = [name for name in names_set if name not in record]
        raise SchemaError(f"missing value for attribute {sorted(missing)[0]!r}")

    def _store(self, rows: Sequence[Row]) -> None:
        """Retain *rows* according to the retention policy."""
        self._appended += len(rows)
        obs = obs_runtime.ACTIVE
        if self.retention != 0:
            self._stored.extend(rows)
            if self.retention is not None:
                while len(self._stored) > self.retention:
                    self._stored.popleft()
        if obs is not None:
            metrics = obs.metrics
            metrics.inc("chronicle_appends_total", len(rows), chronicle=self.name)
            metrics.set("chronicle_stored_rows", len(self._stored), chronicle=self.name)

    # -- reads (guarded) ------------------------------------------------------------

    def _check_readable(self) -> None:
        if in_maintenance():
            raise ChronicleAccessError(
                f"chronicle {self.name!r} was read during incremental view "
                f"maintenance; Theorems 4.2/4.4 forbid chronicle access on "
                f"the maintenance path"
            )

    def rows(self) -> Iterator[Row]:
        """Iterate the *stored* window in sequence order (guarded)."""
        self._check_readable()
        for row in self._stored:
            GLOBAL_COUNTERS.count("chronicle_read")
            yield row

    def window(self, low: Optional[int] = None, high: Optional[int] = None) -> List[Row]:
        """Stored rows with sequence numbers in ``[low, high]`` (guarded).

        Raises :class:`RetentionError` when the requested range starts
        before the retained window.
        """
        self._check_readable()
        if self.retention == 0 and (low is not None or high is not None or self._appended):
            raise RetentionError(
                f"chronicle {self.name!r} stores nothing (retention=0)"
            )
        if low is not None and self._stored:
            oldest = self._stored[0].values[self._seq_position]
            if low < oldest and self._appended > len(self._stored):
                raise RetentionError(
                    f"chronicle {self.name!r}: sequence {low} precedes the "
                    f"retained window starting at {oldest}"
                )
        rows = []
        for row in self._stored:
            GLOBAL_COUNTERS.count("chronicle_read")
            sn = row.values[self._seq_position]
            if low is not None and sn < low:
                continue
            if high is not None and sn > high:
                break
            rows.append(row)
        return rows

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        """Number of *stored* rows (see :attr:`appended_count`)."""
        self._check_readable()
        return len(self._stored)

    @property
    def appended_count(self) -> int:
        """Lifetime number of appended rows (unaffected by retention)."""
        return self._appended

    @property
    def sequence_attribute(self) -> str:
        return self.schema.sequence_attribute

    def last_sequence_number(self) -> Optional[SequenceNumber]:
        """Highest stored sequence number, or ``None`` (guarded read)."""
        self._check_readable()
        if not self._stored:
            return None
        return self._stored[-1].values[self._seq_position]

    def __repr__(self) -> str:
        keep = "all" if self.retention is None else self.retention
        return (
            f"Chronicle({self.name!r}, stored={len(self._stored)}, "
            f"appended={self._appended}, retention={keep})"
        )
