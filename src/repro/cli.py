"""Command-line interface: an interactive chronicle-database session.

Run ``python -m repro.cli`` for a REPL, or ``python -m repro.cli script``
to execute a semicolon-terminated statement file.  The statement language
wraps the library's view-definition language with catalog and data
commands::

    CREATE CHRONICLE calls (caller INT, minutes INT) RETENTION 0;
    CREATE RELATION subscribers (number INT, state STR) KEY (number);
    INSERT subscribers {"number": 5551234, "state": "NJ"};
    DEFINE VIEW usage AS
        SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller;
    APPEND calls {"caller": 5551234, "minutes": 12};
    QUERY usage 5551234;
    SHOW VIEW usage;
    SHOW CATALOG;
    SHOW STATS;
    SHOW COSTS;
    SHOW HEALTH;
    SHOW WORKERS;
    SHOW TIMELINE 20;
    EXPLAIN usage;
    EXPLAIN ANALYZE usage;
    TRACE 3;
    CERTIFY usage;
    SERVE METRICS 9464;
    SERVE STOP;
    CHECKPOINT /tmp/db.ckpt;
    RESTORE /tmp/db.ckpt;
    OPEN /tmp/durable-db;
    FLUSH;
    SHOW DURABILITY;

``SHOW STATS`` prints the registry routing statistics and the metrics
snapshot; ``SHOW HEALTH`` evaluates the session's SLO policy and prints
the OK/DEGRADED/FAILING report (with per-shard lag when sharded);
``SHOW WORKERS`` renders the shard executor fleet — pool slots and
their shard assignments, per-shard IPC byte/time accounting, and worker
RSS/CPU readings when the process executor's telemetry relay has run;
``SHOW TIMELINE [n]`` samples the metrics history and renders the last
*n* samples as sparklines (throughput, maintain p99, shard lag, a
health track, incident markers — the terminal face of ``/timeline``);
``SHOW COSTS [view]`` prints the live per-operator cost ledger
(:mod:`repro.obs.costmodel`), conformance verdicts stamped when
``CERTIFY`` has run; ``EXPLAIN view`` renders the compiled maintenance
plan tree (fusion, sharing, partition, prefilters) and ``EXPLAIN
ANALYZE view`` additionally drives a short instrumented window of
synthesized records and annotates every operator with measured
rows/time/work (note the drive records are appended to the view's
chronicle); ``TRACE n`` prints the last *n* append traces (span trees
with wall time and cost-counter diffs).  ``CERTIFY view`` runs the empirical
conformance sweeps of :mod:`repro.obs.conformance` against the view —
note this appends synthesized drive records to the view's chronicle —
and prints the certificate.  ``SERVE METRICS port`` starts the live
HTTP exporter (``/metrics``, ``/certificates``, ``/snapshot``,
``/timeline``, ``/dashboard``; port 0 picks an ephemeral port);
``SERVE STOP`` stops it.  A session keeps its
own :class:`~repro.obs.Observability` handle and installs it only for
the duration of each statement, so CLI instrumentation never leaks into
the rest of the process.  ``OPEN dir`` switches the session to a durable
database at *dir* (recover-or-create, the
:meth:`~repro.core.database.ChronicleDatabase.open` lifecycle); ``FLUSH``
forces the append-ahead log to disk and ``SHOW DURABILITY`` prints the
WAL/snapshot status including the last recovery report.

Records are JSON objects.  The module is import-safe: :class:`Session`
executes statements and returns text, so tests drive it directly.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Any, List, Optional, Tuple

from .core.database import ChronicleDatabase
from .errors import ChronicleError
from .obs import runtime as obs_runtime

_ATTR_LIST = re.compile(r"\(\s*(.*?)\s*\)", re.S)


class CliError(ChronicleError):
    """A malformed CLI statement."""


def _parse_attr_list(text: str, what: str) -> List[Tuple[str, str]]:
    match = _ATTR_LIST.search(text)
    if not match:
        raise CliError(f"{what}: expected a parenthesized attribute list")
    attrs = []
    for part in match.group(1).split(","):
        pieces = part.split()
        if len(pieces) != 2:
            raise CliError(f"{what}: bad attribute spec {part.strip()!r}")
        attrs.append((pieces[0], pieces[1].upper()))
    return attrs


def _parse_json_payload(text: str, what: str) -> Any:
    brace = text.find("{")
    bracket = text.find("[")
    start = min(p for p in (brace, bracket) if p >= 0) if max(brace, bracket) >= 0 else -1
    if start < 0:
        raise CliError(f"{what}: expected a JSON record after the name")
    try:
        return json.loads(text[start:])
    except json.JSONDecodeError as exc:
        raise CliError(f"{what}: bad JSON ({exc})") from None


def _format_rows(rows: List[Any], limit: int = 20) -> str:
    lines = []
    for index, row in enumerate(rows):
        if index >= limit:
            lines.append(f"... ({len(rows) - limit} more rows)")
            break
        lines.append(
            "  " + ", ".join(f"{k}={v!r}" for k, v in row.as_dict().items())
        )
    return "\n".join(lines) if lines else "  (empty)"


class Session:
    """One CLI session over a fresh :class:`ChronicleDatabase`.

    With *observe* (the default), statements run under the session's
    observability handle: ``SHOW STATS`` and ``TRACE n`` become
    available, at the cost of tracing overhead per statement.
    """

    def __init__(self, observe: bool = True, config: Optional[Any] = None) -> None:
        self._observe = observe
        self._config = config
        self.db = ChronicleDatabase(config=config)
        if observe:
            self.db.enable_observability(install=False, audit="warn")

    # -- statement dispatch ----------------------------------------------------------

    def execute(self, statement: str) -> str:
        """Execute one (semicolon-free) statement; returns display text."""
        obs = self.db.observability
        if obs is None:
            return self._execute(statement)
        with obs_runtime.installed(obs):
            return self._execute(statement)

    def _execute(self, statement: str) -> str:
        statement = statement.strip()
        if not statement or statement.startswith("--"):
            return ""
        words = statement.split()
        head = words[0].upper()
        second = words[1].upper() if len(words) > 1 else ""
        if head == "CREATE" and second == "CHRONICLE":
            return self._create_chronicle(statement, words)
        if head == "CREATE" and second == "RELATION":
            return self._create_relation(statement, words)
        if head == "DEFINE":
            view = self.db.define_view(statement)
            if hasattr(view, "language"):
                return (
                    f"view {view.name} defined "
                    f"[{view.language.value}, {view.im_class.value}]"
                )
            return f"periodic view {view.name} defined over {view.calendar!r}"
        if head == "INSERT":
            return self._insert(statement, words)
        if head == "APPEND":
            return self._append(statement, words)
        if head == "QUERY":
            return self._query(words)
        if head == "SHOW":
            return self._show(words)
        if head == "EXPLAIN":
            return self._explain(words)
        if head == "TRACE":
            return self._trace(words)
        if head == "CERTIFY":
            return self._certify(words)
        if head == "SERVE":
            return self._serve(words)
        if head == "CHECKPOINT":
            self.db.checkpoint(self._path_arg(words, "CHECKPOINT"))
            return "checkpoint written"
        if head == "RESTORE":
            self.db.restore(self._path_arg(words, "RESTORE"))
            return "checkpoint restored"
        if head == "OPEN":
            return self._open(self._path_arg(words, "OPEN"))
        if head == "FLUSH":
            self.db.flush()
            return "log flushed"
        raise CliError(f"unknown statement {head!r} (try SHOW CATALOG)")

    def _open(self, path: str) -> str:
        """``OPEN <dir>``: recover-or-create a durable database there."""
        self.db.close()
        self.db = ChronicleDatabase.open(path, config=self._config)
        if self._observe:
            self.db.enable_observability(install=False, audit="warn")
        manager = self.db.durability
        report = manager.last_recovery if manager is not None else None
        if report is None:
            return f"opened {path} (fresh)"
        return (
            f"opened {path}: recovered snapshot@{report.snapshot_watermark}, "
            f"replayed {report.replayed_batches} batch(es), "
            f"{report.replayed_ddl} catalog op(s)"
        )

    @staticmethod
    def _path_arg(words: List[str], what: str) -> str:
        if len(words) != 2:
            raise CliError(f"{what}: expected exactly one path argument")
        return words[1]

    # -- handlers -----------------------------------------------------------------------

    def _create_chronicle(self, statement: str, words: List[str]) -> str:
        if len(words) < 3:
            raise CliError("CREATE CHRONICLE: missing name")
        name = words[2].split("(")[0]
        attrs = _parse_attr_list(statement, "CREATE CHRONICLE")
        retention: Optional[int] = None
        match = re.search(r"RETENTION\s+(\d+)", statement, re.I)
        if match:
            retention = int(match.group(1))
        self.db.create_chronicle(name, attrs, retention=retention)
        keep = "all" if retention is None else retention
        return f"chronicle {name} created (retention={keep})"

    def _create_relation(self, statement: str, words: List[str]) -> str:
        if len(words) < 3:
            raise CliError("CREATE RELATION: missing name")
        name = words[2].split("(")[0]
        body = statement
        key: Optional[List[str]] = None
        key_match = re.search(r"KEY\s*\(\s*([^)]*?)\s*\)\s*$", statement, re.I)
        if key_match:
            key = [part.strip() for part in key_match.group(1).split(",")]
            body = statement[: key_match.start()]
        attrs = _parse_attr_list(body, "CREATE RELATION")
        self.db.create_relation(name, attrs, key=key)
        return f"relation {name} created" + (f" (key {', '.join(key)})" if key else "")

    def _insert(self, statement: str, words: List[str]) -> str:
        if len(words) < 2:
            raise CliError("INSERT: missing relation name")
        name = words[1]
        payload = _parse_json_payload(statement, "INSERT")
        records = payload if isinstance(payload, list) else [payload]
        relation = self.db.relation(name)
        for record in records:
            relation.insert(record)
        return f"{len(records)} row(s) inserted into {name}"

    def _append(self, statement: str, words: List[str]) -> str:
        if len(words) < 2:
            raise CliError("APPEND: missing chronicle name")
        name = words[1]
        payload = _parse_json_payload(statement, "APPEND")
        rows = self.db.append(name, payload)
        return f"appended {len(rows)} record(s) at sequence {rows[0].sequence_number}"

    def _query(self, words: List[str]) -> str:
        if len(words) < 2:
            raise CliError("QUERY: expected QUERY view [key values...]")
        name = words[1]
        view = self.db.view(name)
        if len(words) == 2:
            return _format_rows(sorted(view.rows(), key=lambda r: r.values))
        key = tuple(json.loads(word) for word in words[2:])
        row = view.lookup(key)
        if row is None:
            return f"  no row for key {key}"
        return _format_rows([row])

    def _show(self, words: List[str]) -> str:
        target = words[1].upper() if len(words) > 1 else "CATALOG"
        if target == "CATALOG":
            lines = []
            for name in sorted(self.db._chronicle_group):
                chronicle = self.db.chronicle(name)
                lines.append(
                    f"  chronicle {name}: {chronicle.appended_count} appended, "
                    f"{len(list(chronicle.schema.names))} attributes"
                )
            for name in sorted(self.db.relations):
                lines.append(f"  relation {name}: {len(self.db.relations[name])} rows")
            for view in self.db.registry.views():
                lines.append(
                    f"  view {view.name}: {len(view)} rows "
                    f"[{view.language.value}, {view.im_class.value}]"
                )
            for name in getattr(self.db, "partitioned_views", ()):
                view = self.db.view(name)
                lines.append(
                    f"  view {name}: {len(view)} rows "
                    f"[{view.language.value}, {view.im_class.value}, sharded]"
                )
            return "\n".join(lines) if lines else "  (empty catalog)"
        if target == "VIEW":
            if len(words) < 3:
                raise CliError("SHOW VIEW: missing view name")
            view = self.db.view(words[2])
            return _format_rows(sorted(view.rows(), key=lambda r: r.values))
        if target == "STATS":
            return self._show_stats()
        if target == "COSTS":
            return self._show_costs(words)
        if target == "SHARDS":
            return self._show_shards()
        if target == "HEALTH":
            return self._show_health()
        if target == "WORKERS":
            return self._show_workers()
        if target == "DURABILITY":
            return self._show_durability()
        if target == "TIMELINE":
            return self._show_timeline(words)
        raise CliError(f"SHOW: unknown target {target!r}")

    def _show_timeline(self, words: List[str]) -> str:
        """``SHOW TIMELINE [n]``: the metrics history as sparklines.

        REPL statements arrive sporadically, so the session runs the
        sampler threadless and forces one sample per invocation — each
        ``SHOW TIMELINE`` appends the window since the previous one.
        """
        obs = self._observability()
        n = 12
        if len(words) > 2:
            try:
                n = int(words[2])
            except ValueError:
                raise CliError(f"SHOW TIMELINE: bad sample count {words[2]!r}")
            if n < 1:
                raise CliError("SHOW TIMELINE: sample count must be >= 1")
        history = obs.history
        if history is None:
            settings = self.db.config.history
            history = obs.start_history(
                interval=settings.sample_interval_seconds,
                capacity=settings.capacity,
                thread=False,
            )
        history.sample_now()
        return "\n".join(
            "  " + line for line in history.format(n).splitlines()
        )

    def _show_durability(self) -> str:
        manager = self.db.durability
        if manager is None:
            return "  durability=off (use OPEN <dir> or DurabilityConfig)"
        lines = []
        for key, value in manager.status().items():
            if isinstance(value, dict):
                lines.append(f"  {key}:")
                lines.extend(f"    {k}={v!r}" for k, v in value.items())
            else:
                lines.append(f"  {key}={value!r}")
        return "\n".join(lines)

    def _show_health(self) -> str:
        obs = self._observability()
        report = obs.health()
        return "\n".join("  " + line for line in report.format().splitlines())

    def _show_costs(self, words: List[str]) -> str:
        """The live cost ledger, optionally filtered to one view."""
        obs = self._observability()
        if obs.certificates:
            obs.cost_ledger.link_certificates(obs.certificates)
        view = words[2] if len(words) > 2 else None
        text = obs.cost_ledger.format(view)
        return "\n".join("  " + line for line in text.splitlines())

    def _explain(self, words: List[str]) -> str:
        """``EXPLAIN [ANALYZE] [VIEW] <name>``: the compiled plan tree."""
        rest = words[1:]
        analyze = bool(rest) and rest[0].upper() == "ANALYZE"
        if analyze:
            rest = rest[1:]
        if rest and rest[0].upper() == "VIEW":
            rest = rest[1:]
        if len(rest) != 1:
            raise CliError("EXPLAIN: expected EXPLAIN [ANALYZE] <view>")
        report = self.db.explain(rest[0], analyze=analyze)
        return "\n".join("  " + line for line in report.format().splitlines())

    def _show_shards(self) -> str:
        shard_groups = getattr(self.db, "shard_groups", None)
        if shard_groups is None:
            return "  engine=serial (no shards; start with engine='sharded')"
        lines = [f"  engine=sharded shards={self.db.config.shards}"]
        for shard_group in shard_groups:
            lines.append(
                f"  key class {shard_group.name} {shard_group.spec!r}: "
                f"views {sorted(shard_group.views)}"
            )
            for unit in shard_group.units:
                rows = sum(
                    len(unit.registry.view(name).relation)
                    for name in shard_group.views
                )
                lines.append(
                    f"    shard {unit.label}: watermark={unit.watermark} rows={rows}"
                )
        fallbacks = self.db.fallback_views
        if fallbacks:
            lines.append(f"  serial-shard fallbacks: {sorted(fallbacks)}")
        return "\n".join(lines)

    def _show_workers(self) -> str:
        """The executor fleet: slots, IPC accounting, worker resources."""
        maintainer = getattr(self.db, "_maintainer", None)
        if maintainer is None:
            return "  engine=serial (no shard executor; start with engine='sharded')"
        header = f"  executor={maintainer.executor} workers={maintainer.workers}"
        backend = maintainer._backend
        lines = [header]
        if maintainer.executor == "process":
            relay = getattr(backend, "relay_telemetry", False)
            lines[0] += f" relay_telemetry={'on' if relay else 'off'}"
            broken = getattr(backend, "_broken", {})
            slots: dict = {}
            for label, slot in sorted(getattr(backend, "_assignment", {}).items()):
                slots.setdefault(slot, []).append(label)
            for slot in sorted(slots):
                state = "BROKEN" if slot in broken else "ok"
                lines.append(f"  slot {slot} [{state}]: shards {slots[slot]}")
        obs = self.db.observability
        if obs is None:
            lines.append("  (observability disabled; no worker telemetry)")
            return "\n".join(lines)
        metrics = obs.metrics
        down = {
            labels.get("shard"): inst.value
            for labels, inst in metrics.series("ipc_bytes_down_total")
        }
        up = {
            labels.get("shard"): inst.value
            for labels, inst in metrics.series("ipc_bytes_up_total")
        }
        if down or up:
            lines.append("  == ipc ==")
            pickling: dict = {}
            for name in ("ipc_encode_seconds", "ipc_decode_seconds"):
                for labels, inst in metrics.series(name):
                    shard = labels.get("shard")
                    pickling[shard] = pickling.get(shard, 0.0) + inst.sum
            for shard in sorted(set(down) | set(up), key=str):
                lines.append(
                    f"  shard {shard}: down {int(down.get(shard, 0)):,}B "
                    f"up {int(up.get(shard, 0)):,}B "
                    f"enc+dec {pickling.get(shard, 0.0) * 1e3:.2f}ms"
                )
        rss = {
            labels.get("worker"): inst.value
            for labels, inst in metrics.series("worker_rss_bytes")
        }
        cpu = {
            labels.get("worker"): inst.value
            for labels, inst in metrics.series("worker_cpu_seconds")
        }
        if rss or cpu:
            lines.append("  == workers ==")
            for worker in sorted(set(rss) | set(cpu), key=str):
                lines.append(
                    f"  worker {worker}: "
                    f"rss {rss.get(worker, 0) / (1 << 20):.1f}MiB "
                    f"cpu {cpu.get(worker, 0.0):.2f}s"
                )
        if not (down or up or rss or cpu):
            lines.append(
                "  (no worker telemetry yet — run windows under "
                "executor='process' with observability on)"
            )
        return "\n".join(lines)

    def _observability(self):
        obs = self.db.observability
        if obs is None:
            raise CliError(
                "observability is disabled for this session "
                "(construct Session(observe=True))"
            )
        return obs

    def _show_stats(self) -> str:
        obs = self._observability()
        stats = self.db.registry.stats
        per_view = stats.pop("per_view", None)
        lines = ["== registry =="]
        for key, value in sorted(stats.items()):
            lines.append(f"  {key}: {value}")
        if per_view:
            lines.append("== views ==")
            for name, values in sorted(per_view.items()):
                lines.append(
                    f"  {name}: {values['spans']} maintain spans, "
                    f"last append {values['last_append_seconds'] * 1e6:,.0f}us"
                )
        lines.append("== audit ==")
        for key, value in sorted(obs.auditor.summary().items()):
            lines.append(f"  {key}: {value}")
        lines.append("== metrics ==")
        metrics_start = len(lines)
        for name, family in sorted(obs.metrics.as_dict().items()):
            for labels, value in family["series"].items():
                series = f"{name}{{{labels}}}" if labels else name
                if family["type"] == "histogram":
                    lines.append(
                        f"  {series} count={value['count']} "
                        f"sum={value['sum']:.6f}"
                    )
                else:
                    lines.append(f"  {series} {value}")
        if len(lines) == metrics_start:
            lines.append("  (no metrics recorded yet)")
        return "\n".join(lines)

    def _trace(self, words: List[str]) -> str:
        obs = self._observability()
        if len(words) > 2:
            raise CliError("TRACE: expected TRACE [n]")
        count = 1
        if len(words) == 2:
            try:
                count = int(words[1])
            except ValueError:
                raise CliError(f"TRACE: bad count {words[1]!r}") from None
            if count < 1:
                raise CliError("TRACE: count must be >= 1")
        traces = obs.tracer.traces(count)
        if not traces:
            return "  (no traces recorded yet)"
        return "\n".join(span.format(indent=1) for span in traces)

    def _certify(self, words: List[str]) -> str:
        self._observability()  # certificates need a handle to land on
        if len(words) != 2:
            raise CliError("CERTIFY: expected CERTIFY view")
        # The REPL favors snappy over asymptotic: a 4x-per-step sweep up
        # to 2k records still separates constant from linear cleanly.
        certificate = self.db.certify_view(
            words[1], samples=3, c_sizes=(128, 512, 2_048), r_sizes=(128, 512, 2_048)
        )
        return certificate.format()

    def _serve(self, words: List[str]) -> str:
        obs = self._observability()
        target = words[1].upper() if len(words) > 1 else ""
        if target == "METRICS":
            if len(words) != 3:
                raise CliError("SERVE: expected SERVE METRICS port")
            try:
                port = int(words[2])
            except ValueError:
                raise CliError(f"SERVE: bad port {words[2]!r}") from None
            server = obs.serve(port=port)
            return f"serving metrics at {server.url}/metrics"
        if target == "STOP":
            if obs.server is None:
                return "no metrics server running"
            port = obs.server.port
            obs.stop_serving()
            return f"metrics server on port {port} stopped"
        raise CliError("SERVE: expected SERVE METRICS port | SERVE STOP")

    # -- statement splitting ----------------------------------------------------------

    @staticmethod
    def split_statements(text: str) -> List[str]:
        """Split script text into semicolon-terminated statements.

        Semicolons inside single-quoted strings are respected.
        """
        statements, current, in_string = [], [], False
        for char in text:
            if char == "'":
                in_string = not in_string
            if char == ";" and not in_string:
                statements.append("".join(current))
                current = []
            else:
                current.append(char)
        tail = "".join(current).strip()
        if tail:
            statements.append(tail)
        return [s for s in (s.strip() for s in statements) if s]

    def run_script(self, text: str, out: Any = None) -> int:
        """Execute a script; returns the number of failed statements."""
        out = out if out is not None else sys.stdout
        failures = 0
        for statement in self.split_statements(text):
            try:
                result = self.execute(statement)
                if result:
                    out.write(result + "\n")
            except ChronicleError as exc:
                failures += 1
                out.write(f"error: {exc}\n")
        return failures


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    session = Session()
    if argv:
        with open(argv[0]) as handle:
            return 1 if session.run_script(handle.read()) else 0
    sys.stdout.write(
        "chronicle database shell — statements end with ';' "
        "(SHOW CATALOG; to inspect, Ctrl-D to exit)\n"
    )
    buffer: List[str] = []
    try:
        while True:
            prompt = "chronicle> " if not buffer else "       ...> "
            sys.stdout.write(prompt)
            sys.stdout.flush()
            line = sys.stdin.readline()
            if not line:
                break
            buffer.append(line)
            text = "".join(buffer)
            if ";" in line:
                buffer = []
                session.run_script(text)
    except KeyboardInterrupt:
        pass
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
