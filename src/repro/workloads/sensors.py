"""Industrial-control sensor workload.

The paper lists "sensor outputs in a control system" among the chronicle
streams.  Readings random-walk per sensor with occasional spikes, so MIN /
MAX / AVG / STDEV views (and out-of-range alarm views) all have something
to see.  Values are integer milli-units for exact arithmetic.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SchemaSpec, Workload


class SensorWorkload(Workload):
    """A stream of sensor readings.

    Record attributes
    -----------------
    sensor:
        Sensor id (round-robin with jitter — control systems poll).
    milli:
        Reading in milli-units, random-walked around a per-sensor base.
    status:
        ok | spike (spikes are rare out-of-range excursions).
    tick:
        Polling tick index (chronon).
    """

    NAME = "readings"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("sensor", "INT"),
        ("milli", "INT"),
        ("status", "STR"),
        ("tick", "INT"),
    ]

    def __init__(
        self,
        seed: int = 53,
        sensors: int = 64,
        spike_probability: float = 0.005,
    ) -> None:
        super().__init__(seed)
        self.sensors = sensors
        self.spike_probability = spike_probability
        self._levels: Dict[int, int] = {
            sensor: 20_000 + self.rng.randrange(-5_000, 5_001)
            for sensor in range(sensors)
        }

    def record(self, index: int) -> Dict[str, Any]:
        sensor = (index + self.rng.randrange(3)) % self.sensors
        level = self._levels[sensor] + self.rng.randrange(-200, 201)
        self._levels[sensor] = level
        if self.rng.random() < self.spike_probability:
            status = "spike"
            milli = level + self.rng.choice((-1, 1)) * self.rng.randrange(5_000, 20_001)
        else:
            status = "ok"
            milli = level
        return {
            "sensor": sensor,
            "milli": milli,
            "status": status,
            "tick": index // self.sensors,
        }

    def sensor_rows(self) -> List[Dict[str, Any]]:
        """Rows for a ``sensors`` relation (sensor, unit, zone)."""
        units = ("kPa", "C", "rpm", "V")
        return [
            {
                "sensor": sensor,
                "unit": units[sensor % len(units)],
                "zone": sensor // 8,
            }
            for sensor in range(self.sensors)
        ]

    SENSOR_SCHEMA: SchemaSpec = [
        ("sensor", "INT"),
        ("unit", "STR"),
        ("zone", "INT"),
    ]
