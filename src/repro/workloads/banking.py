"""Consumer-banking workload: ATM withdrawals, deposits, fees.

Models the Section 1 ATM scenario: "some applications, such as ATM
withdrawals, require that a summary field (dollar_balance) be updated as
the transaction is executed, since the summary query needs to be made
before the next ATM withdrawal."  Amounts are signed integer cents.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SchemaSpec, Workload, ZipfChooser

_KINDS = ("withdrawal", "deposit", "fee", "check")


class BankingWorkload(Workload):
    """A stream of account transactions.

    Record attributes
    -----------------
    acct:
        Account number (hot-skewed).
    kind:
        One of withdrawal/deposit/fee/check.
    cents:
        Signed amount in cents (deposits positive, the rest negative).
    day:
        Day index (chronon).
    """

    NAME = "transactions"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("acct", "INT"),
        ("kind", "STR"),
        ("cents", "INT"),
        ("day", "INT"),
    ]

    def __init__(
        self,
        seed: int = 11,
        accounts: int = 500,
        transactions_per_day: int = 150,
    ) -> None:
        super().__init__(seed)
        self.accounts = accounts
        self.transactions_per_day = max(transactions_per_day, 1)
        self._chooser = ZipfChooser(accounts, rng=self.rng)

    def record(self, index: int) -> Dict[str, Any]:
        acct = 100_000 + self._chooser.choose()
        roll = self.rng.random()
        if roll < 0.45:
            kind, cents = "withdrawal", -self.rng.randrange(2_000, 40_001)
        elif roll < 0.75:
            kind, cents = "deposit", self.rng.randrange(5_000, 300_001)
        elif roll < 0.9:
            kind, cents = "check", -self.rng.randrange(1_000, 150_001)
        else:
            kind, cents = "fee", -self.rng.randrange(100, 2_501)
        return {
            "acct": acct,
            "kind": kind,
            "cents": cents,
            "day": index // self.transactions_per_day,
        }

    def account_rows(self, opening_balance_cents: int = 100_000) -> List[Dict[str, Any]]:
        """Rows for an ``accounts`` relation (acct, holder, opened_day)."""
        rows = []
        for offset in range(self.accounts):
            rows.append(
                {
                    "acct": 100_000 + offset,
                    "holder": f"holder_{offset}",
                    "opening_cents": opening_balance_cents,
                }
            )
        return rows

    ACCOUNT_SCHEMA: SchemaSpec = [
        ("acct", "INT"),
        ("holder", "STR"),
        ("opening_cents", "INT"),
    ]
