"""Shared machinery for the synthetic transaction-stream generators.

The paper's evaluation substrate is a production AT&T transaction system
(75 GB/day of call records) that we cannot ship; these generators are the
documented substitution (DESIGN.md §3).  They produce realistically
skewed, seeded, reproducible record streams with the schemas the paper's
motivating applications use — credit cards, telephone calls, banking,
frequent flyer, stock trades, sensors.

Records are plain dicts matching a chronicle schema (sequence numbers are
stamped by the chronicle group at append time).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Tuple

SchemaSpec = List[Tuple[str, str]]


class ZipfChooser:
    """Zipf-skewed choice over ``population`` items.

    Real transaction streams are heavily skewed (a few hot accounts
    produce most records); a truncated Zipf with exponent *s* reproduces
    that.  Weights are precomputed so choice is O(log n) via
    ``random.choices``' internal bisect.
    """

    def __init__(self, population: int, s: float = 1.1, rng: Optional[random.Random] = None) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        self.population = population
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank ** s) for rank in range(1, population + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def choose(self) -> int:
        """A 0-based item index, Zipf-skewed toward small indices."""
        from bisect import bisect_left

        return bisect_left(self._cumulative, self._rng.random())


class Workload:
    """Base class: a seeded generator of chronicle records.

    Subclasses define ``CHRONICLE_SCHEMA`` (``(name, domain)`` pairs,
    without the sequence attribute) and implement :meth:`record`.
    """

    #: Chronicle payload attributes (the SEQ column is added by the group).
    CHRONICLE_SCHEMA: SchemaSpec = []
    #: Workload name used for chronicle naming.
    NAME = "workload"

    def __init__(self, seed: int = 7, **params: Any) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.params = params

    def record(self, index: int) -> Dict[str, Any]:
        """The *index*-th transaction record."""
        raise NotImplementedError

    def records(self, count: int, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Generate *count* records starting at *start*."""
        for index in range(start, start + count):
            yield self.record(index)

    def chronicle_spec(self) -> SchemaSpec:
        """``(name, domain)`` pairs for ``create_chronicle``."""
        return list(self.CHRONICLE_SCHEMA)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


def round_currency(value: float) -> float:
    """Round to cents — keeps float totals comparable across orderings."""
    return round(value, 2)
