"""Seeded synthetic transaction-stream generators (DESIGN.md §3)."""

from .banking import BankingWorkload
from .base import Workload, ZipfChooser
from .credit_card import CreditCardWorkload
from .frequent_flyer import FrequentFlyerWorkload, premier_status
from .sensors import SensorWorkload
from .stocks import StockWorkload
from .telecom import TelecomWorkload

__all__ = [
    "Workload",
    "ZipfChooser",
    "TelecomWorkload",
    "BankingWorkload",
    "CreditCardWorkload",
    "FrequentFlyerWorkload",
    "premier_status",
    "StockWorkload",
    "SensorWorkload",
]
