"""Stock-trading workload.

Backs the Section 5.1 moving-window example: "a periodic view for every
day that computes the total number of shares of a stock sold during the
30 days preceding that day."  Prices are integer cents; share counts are
lot-sized integers.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SchemaSpec, Workload, ZipfChooser

_SIDES = ("buy", "sell")


class StockWorkload(Workload):
    """A stream of trade records.

    Record attributes
    -----------------
    symbol:
        Stock symbol index (hot-skewed: a few symbols dominate volume).
    side:
        buy | sell.
    shares:
        Lot-sized share count (multiples of 100).
    price_cents:
        Execution price in cents, randomly walked per symbol.
    day:
        Trading-day index (chronon).
    """

    NAME = "trades"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("symbol", "INT"),
        ("side", "STR"),
        ("shares", "INT"),
        ("price_cents", "INT"),
        ("day", "INT"),
    ]

    def __init__(
        self,
        seed: int = 31,
        symbols: int = 50,
        trades_per_day: int = 300,
    ) -> None:
        super().__init__(seed)
        self.symbols = symbols
        self.trades_per_day = max(trades_per_day, 1)
        self._chooser = ZipfChooser(symbols, rng=self.rng)
        self._prices: Dict[int, int] = {
            symbol: self.rng.randrange(1_000, 50_001) for symbol in range(symbols)
        }

    def record(self, index: int) -> Dict[str, Any]:
        symbol = self._chooser.choose()
        # Random-walk the per-symbol price by up to ±2%.
        price = self._prices[symbol]
        drift = self.rng.randrange(-price // 50 - 1, price // 50 + 2)
        price = max(price + drift, 100)
        self._prices[symbol] = price
        return {
            "symbol": symbol,
            "side": _SIDES[self.rng.randrange(2)],
            "shares": 100 * self.rng.randrange(1, 51),
            "price_cents": price,
            "day": index // self.trades_per_day,
        }

    def symbol_rows(self) -> List[Dict[str, Any]]:
        """Rows for a ``symbols`` relation (symbol, ticker, sector)."""
        sectors = ("tech", "finance", "energy", "health", "retail")
        return [
            {
                "symbol": symbol,
                "ticker": f"SYM{symbol:03d}",
                "sector": sectors[symbol % len(sectors)],
            }
            for symbol in range(self.symbols)
        ]

    SYMBOL_SCHEMA: SchemaSpec = [
        ("symbol", "INT"),
        ("ticker", "STR"),
        ("sector", "STR"),
    ]
