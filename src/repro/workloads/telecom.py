"""Call-detail-record (CDR) workload.

The paper's lead example: a cellular company posting call records and
answering "total minutes of calls made in the current billing month from
a phone number" at phone power-on (Section 1).  Amounts are integer cents
and durations integer seconds so incremental/batch comparisons are exact.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SchemaSpec, Workload, ZipfChooser


class TelecomWorkload(Workload):
    """A stream of cellular call records.

    Record attributes
    -----------------
    caller:
        Phone number (hot-skewed over *subscribers*).
    callee:
        Called number.
    seconds:
        Call duration in seconds (1..3600, short-call biased).
    cents:
        Charge in integer cents, duration-proportional plus per-call fee.
    day:
        Day index since service start (monotone non-decreasing) — the
        chronon the billing calendars bucket by.
    """

    NAME = "calls"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("caller", "INT"),
        ("callee", "INT"),
        ("seconds", "INT"),
        ("cents", "INT"),
        ("day", "INT"),
    ]

    def __init__(
        self,
        seed: int = 7,
        subscribers: int = 1000,
        calls_per_day: int = 200,
        rate_cents_per_minute: int = 12,
        connection_fee_cents: int = 15,
    ) -> None:
        super().__init__(seed)
        self.subscribers = subscribers
        self.calls_per_day = max(calls_per_day, 1)
        self.rate = rate_cents_per_minute
        self.fee = connection_fee_cents
        self._chooser = ZipfChooser(subscribers, rng=self.rng)

    def record(self, index: int) -> Dict[str, Any]:
        caller = 5_550_000 + self._chooser.choose()
        callee = 5_550_000 + self.rng.randrange(self.subscribers)
        # Short calls dominate: exponential-ish via min of uniforms.
        seconds = 1 + min(self.rng.randrange(3600), self.rng.randrange(3600))
        minutes_billed = (seconds + 59) // 60
        cents = self.fee + self.rate * minutes_billed
        return {
            "caller": caller,
            "callee": callee,
            "seconds": seconds,
            "cents": cents,
            "day": index // self.calls_per_day,
        }

    def subscriber_rows(self) -> List[Dict[str, Any]]:
        """Rows for a ``subscribers`` relation (number, plan, state)."""
        plans = ("basic", "plus", "premier")
        states = ("NJ", "NY", "CT", "PA")
        rows = []
        rng = self.rng
        for offset in range(self.subscribers):
            rows.append(
                {
                    "number": 5_550_000 + offset,
                    "plan": plans[rng.randrange(len(plans))],
                    "state": states[rng.randrange(len(states))],
                }
            )
        return rows

    SUBSCRIBER_SCHEMA: SchemaSpec = [
        ("number", "INT"),
        ("plan", "STR"),
        ("state", "STR"),
    ]
