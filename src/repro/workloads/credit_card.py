"""Credit-card transaction workload.

One of the domains the paper lists for the chronicle model (credit cards,
billing, retailing).  Includes a merchant-category attribute so selective
views (fraud screens, category totals) exercise the Section 5.2
affected-view prefilter.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SchemaSpec, Workload, ZipfChooser

_CATEGORIES = (
    "grocery",
    "fuel",
    "dining",
    "travel",
    "online",
    "utilities",
    "cash_advance",
)


class CreditCardWorkload(Workload):
    """A stream of card purchases.

    Record attributes
    -----------------
    card:
        Card number (hot-skewed over *cards*).
    merchant:
        Merchant id.
    category:
        Merchant category (cash advances rare — good prefilter target).
    cents:
        Purchase amount in cents.
    day:
        Day index (chronon).
    """

    NAME = "purchases"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("card", "INT"),
        ("merchant", "INT"),
        ("category", "STR"),
        ("cents", "INT"),
        ("day", "INT"),
    ]

    def __init__(
        self,
        seed: int = 41,
        cards: int = 800,
        merchants: int = 200,
        purchases_per_day: int = 250,
    ) -> None:
        super().__init__(seed)
        self.cards = cards
        self.merchants = merchants
        self.purchases_per_day = max(purchases_per_day, 1)
        self._chooser = ZipfChooser(cards, rng=self.rng)

    def record(self, index: int) -> Dict[str, Any]:
        roll = self.rng.random()
        if roll < 0.02:
            category = "cash_advance"
            cents = self.rng.randrange(5_000, 50_001)
        else:
            category = _CATEGORIES[self.rng.randrange(len(_CATEGORIES) - 1)]
            cents = self.rng.randrange(200, 30_001)
        return {
            "card": 4_000_000 + self._chooser.choose(),
            "merchant": self.rng.randrange(self.merchants),
            "category": category,
            "cents": cents,
            "day": index // self.purchases_per_day,
        }

    def cardholder_rows(self) -> List[Dict[str, Any]]:
        """Rows for a ``cardholders`` relation (card, limit, tier)."""
        tiers = ("standard", "gold", "platinum")
        rows = []
        for offset in range(self.cards):
            rows.append(
                {
                    "card": 4_000_000 + offset,
                    "limit_cents": self.rng.randrange(100_000, 2_000_001),
                    "tier": tiers[self.rng.randrange(len(tiers))],
                }
            )
        return rows

    CARDHOLDER_SCHEMA: SchemaSpec = [
        ("card", "INT"),
        ("limit_cents", "INT"),
        ("tier", "STR"),
    ]
