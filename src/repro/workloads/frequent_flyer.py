"""Frequent-flyer workload: the paper's running example (Examples 2.1/2.2).

One chronicle of mileage transactions; a customers relation (account,
name, address state); persistent views for mileage balance, miles
actually flown, and premier status.  New-Jersey residents get a 500-mile
bonus per flight *based on the address at flight time* — the temporal
join the proactive-update rule makes maintainable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .base import SchemaSpec, Workload, ZipfChooser

_STATES = ("NJ", "NY", "CT", "PA", "CA", "TX")
_SOURCES = ("flight", "partner", "promotion")


class FrequentFlyerWorkload(Workload):
    """A stream of mileage transactions.

    Record attributes
    -----------------
    acct:
        Customer account (hot-skewed: frequent flyers fly frequently).
    miles:
        Miles posted (flights 100..5000; partner/promotion smaller).
    source:
        flight | partner | promotion (only flights count as "flown").
    day:
        Day index (chronon).
    """

    NAME = "mileage"
    CHRONICLE_SCHEMA: SchemaSpec = [
        ("acct", "INT"),
        ("miles", "INT"),
        ("source", "STR"),
        ("day", "INT"),
    ]

    def __init__(
        self,
        seed: int = 23,
        customers: int = 400,
        postings_per_day: int = 120,
    ) -> None:
        super().__init__(seed)
        self.customers = customers
        self.postings_per_day = max(postings_per_day, 1)
        self._chooser = ZipfChooser(customers, rng=self.rng)

    def record(self, index: int) -> Dict[str, Any]:
        acct = 9_000_000 + self._chooser.choose()
        roll = self.rng.random()
        if roll < 0.7:
            source, miles = "flight", self.rng.randrange(100, 5_001)
        elif roll < 0.9:
            source, miles = "partner", self.rng.randrange(50, 1_001)
        else:
            source, miles = "promotion", self.rng.randrange(250, 2_501)
        return {
            "acct": acct,
            "miles": miles,
            "source": source,
            "day": index // self.postings_per_day,
        }

    def customer_rows(self) -> List[Dict[str, Any]]:
        """Rows for the ``customers`` relation of Example 2.1."""
        rows = []
        rng = self.rng
        for offset in range(self.customers):
            rows.append(
                {
                    "acct": 9_000_000 + offset,
                    "name": f"customer_{offset}",
                    "state": _STATES[rng.randrange(len(_STATES))],
                }
            )
        return rows

    def address_change(self, day: int) -> Tuple[int, str]:
        """A random proactive address update: (acct, new_state)."""
        acct = 9_000_000 + self.rng.randrange(self.customers)
        return acct, _STATES[self.rng.randrange(len(_STATES))]

    CUSTOMER_SCHEMA: SchemaSpec = [
        ("acct", "INT"),
        ("name", "STR"),
        ("state", "STR"),
    ]


#: Premier-status thresholds (miles flown → tier), per Example 2.1.
PREMIER_TIERS: Tuple[Tuple[int, str], ...] = (
    (25_000, "bronze"),
    (50_000, "silver"),
    (100_000, "gold"),
)


def premier_status(miles_flown: int) -> str:
    """Map miles actually flown to the premier tier of Example 2.1."""
    status = "member"
    for threshold, tier in PREMIER_TIERS:
        if miles_flown >= threshold:
            status = tier
    return status
