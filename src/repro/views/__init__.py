"""View management (Section 5): registry, calendars, periodic views,
moving windows, batch→incremental conversion."""

from .batch import IncrementalTieredComputation, TierSchedule, batch_tiered_computation
from .derived import ViewQuery, top_k
from .calendar import Calendar, ExplicitCalendar, Interval, PeriodicCalendar, monthly, sliding
from .moving import KeyedMovingWindow, MovingWindowAggregate
from .periodic import PeriodicViewSet
from .registry import ViewRegistry, scan_prefilters

__all__ = [
    "ViewRegistry",
    "ViewQuery",
    "top_k",
    "scan_prefilters",
    "Calendar",
    "PeriodicCalendar",
    "ExplicitCalendar",
    "Interval",
    "monthly",
    "sliding",
    "PeriodicViewSet",
    "MovingWindowAggregate",
    "KeyedMovingWindow",
    "TierSchedule",
    "IncrementalTieredComputation",
    "batch_tiered_computation",
]
