"""Identifying affected persistent views (Section 5.2).

"When multiple views are to be maintained over the same chronicle, each
update to the chronicle would require checking all the views to determine
if they need to be updated."  The registry avoids that with two filters:

1. **dependency index** — chronicle name → views depending on it, so an
   append only visits views over the touched chronicles;
2. **selection prefilter** — for each (view, chronicle) pair, the
   conjunction of selection predicates sitting between the view's scan of
   that chronicle and any non-selection operator.  A delta none of whose
   rows pass the prefilter cannot change the view, so its (more
   expensive) delta propagation is skipped.  This is the cheap
   update-independence test of [LS93] specialized to CA's predicate
   fragment.

The registry is also the natural owner of periodic view sets: only the
views *active* for the current interval are maintained (third bullet of
Section 5.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..algebra.ast import ChronicleScan, Node, Select
from ..algebra.plan import (
    UNPARTITIONABLE,
    CompiledPlan,
    PlanCompiler,
    compile_prefilter,
    infer_partition,
)
from ..core.chronicle import maintenance_guard
from ..core.delta import Delta
from ..core.group import ChronicleGroup
from ..errors import ViewRegistrationError
from ..obs import runtime as obs_runtime
from ..relational.predicate import Predicate, conjunction
from ..relational.tuples import Row
from ..sca.maintenance import event_deltas
from ..sca.view import PersistentView
from .periodic import PeriodicViewSet


def scan_prefilters(expression: Node) -> Dict[str, List[Predicate]]:
    """Per-chronicle prefilter predicates of an expression.

    For every base-chronicle scan, collect the selection predicates that
    apply directly above it (before any reshaping operator), then AND
    them per chronicle.  Rows failing the prefilter can be discarded
    before delta propagation.  A chronicle scanned twice with different
    filters gets the OR-semantics of "any scan might accept the row" by
    keeping the predicate lists separate — callers must pass a row when
    *any* scan's conjunction accepts it.
    """
    filters: Dict[str, List[Predicate]] = {}
    unfiltered: set = set()

    def descend(node: Node, pending: Tuple[Predicate, ...]) -> None:
        if isinstance(node, Select):
            descend(node.child, pending + (node.predicate,))
            return
        if isinstance(node, ChronicleScan):
            name = node.chronicle.name
            filters.setdefault(name, [])
            if pending and name not in unfiltered:
                filters[name].append(conjunction(list(pending)))
            else:
                # An unfiltered scan accepts everything: no prefilter for
                # this chronicle, regardless of other (filtered) scans.
                unfiltered.add(name)
                filters[name] = []
            return
        for child in node.children:
            descend(child, ())

    descend(expression, ())
    return filters


class RegisteredView:
    """Registry bookkeeping for one persistent view.

    In compiled registries this also carries the view's interned
    expression (*root*), its :class:`~repro.algebra.plan.CompiledPlan`,
    and position-compiled prefilter tests (one per chronicle) that avoid
    per-row attribute-name resolution on the append path.
    """

    __slots__ = ("view", "prefilters", "root", "plan", "partition", "_compiled_prefilters")

    def __init__(self, view: PersistentView) -> None:
        self.view = view
        self.prefilters = scan_prefilters(view.expression)
        self.root: Optional[Node] = None
        self.plan: Optional[CompiledPlan] = None
        #: Partition declaration (PartitionSpec or UNPARTITIONABLE) —
        #: the sharded engine routes records by it; compiled plans carry
        #: the same declaration.
        self.partition = infer_partition(view.summary)
        self._compiled_prefilters: Optional[
            Dict[str, Optional[Callable[[Tuple[Row, ...]], bool]]]
        ] = None

    def compile_prefilters(self) -> None:
        """Precompile the prefilter conjunctions against chronicle schemas."""
        schemas = {c.name: c.schema for c in self.view.expression.chronicles()}
        compiled: Dict[str, Optional[Callable[[Tuple[Row, ...]], bool]]] = {}
        for name, predicates in self.prefilters.items():
            if predicates:
                compiled[name] = compile_prefilter(predicates, schemas[name])
            else:
                compiled[name] = None  # some scan of the chronicle is unfiltered
        self._compiled_prefilters = compiled

    def might_be_affected(self, chronicle_name: str, rows: Tuple[Row, ...]) -> bool:
        """Cheap test: could this delta change the view?"""
        if self._compiled_prefilters is not None:
            try:
                test = self._compiled_prefilters[chronicle_name]
            except KeyError:
                return False
            return True if test is None else test(rows)
        if chronicle_name not in self.prefilters:
            return False
        predicates = self.prefilters[chronicle_name]
        if not predicates:
            return True  # some scan of the chronicle is unfiltered
        return any(
            predicate.evaluate(row) for row in rows for predicate in predicates
        )


class ViewRegistry:
    """Owns every persistent view of a database and routes appends.

    Parameters
    ----------
    prefilter:
        Enable the selection prefilter (disable to measure its benefit —
        benchmark E9 does exactly that).
    compile:
        Route maintenance through compiled plans
        (:mod:`repro.algebra.plan`): view expressions are structurally
        interned at registration so equivalent subexpressions across
        independently-defined views share one node (and one delta
        computation per event), and each view's delta propagation runs as
        a fused closure pipeline instead of the tree interpreter.  Plans
        are (re)compiled lazily after registration changes; appends never
        pay compilation cost twice.
    """

    def __init__(self, prefilter: bool = True, compile: bool = False) -> None:
        self.prefilter = prefilter
        self.compile = compile
        self._views: Dict[str, RegisteredView] = {}
        self._periodic: Dict[str, PeriodicViewSet] = {}
        self._by_chronicle: Dict[str, List[RegisteredView]] = {}
        self._stats = {
            "events": 0,
            "candidate_views": 0,
            "maintained_views": 0,
            # Prefilter effectiveness: a *hit* is a candidate view the
            # prefilter proved unaffected (its maintenance was skipped);
            # a *miss* is a candidate that had to be maintained anyway.
            "prefilter_hits": 0,
            "prefilter_misses": 0,
            # Which engine maintained the views (compiled plans vs the
            # tree interpreter) — sums to maintained_views.
            "compiled_maintained": 0,
            "interpreted_maintained": 0,
        }
        # Per-view maintenance observations (span count + last append
        # latency), populated only while observability is installed —
        # the numbers come from the ``maintain`` spans.
        self._per_view: Dict[str, Dict[str, float]] = {}
        self._compiler: Optional[PlanCompiler] = PlanCompiler() if compile else None
        self._plans_stale = False

    # -- registration -----------------------------------------------------------------

    def register(self, view: PersistentView) -> PersistentView:
        """Register a persistent view for maintenance."""
        if view.name in self._views or view.name in self._periodic:
            raise ViewRegistrationError(f"view name {view.name!r} already registered")
        registered = RegisteredView(view)
        if self._compiler is not None:
            registered.root = self._compiler.add_root(view.expression)
            registered.compile_prefilters()
            # Sharing boundaries may have moved: recompile lazily, off the
            # append path.
            self._plans_stale = True
        self._views[view.name] = registered
        for chronicle_name in view.chronicle_names():
            self._by_chronicle.setdefault(chronicle_name, []).append(registered)
        return view

    def register_periodic(self, view_set: PeriodicViewSet, group: ChronicleGroup) -> PeriodicViewSet:
        """Register a periodic view set (it handles its own routing)."""
        if view_set.name in self._views or view_set.name in self._periodic:
            raise ViewRegistrationError(f"view name {view_set.name!r} already registered")
        self._periodic[view_set.name] = view_set
        view_set.attach(group)
        return view_set

    def unregister(self, name: str) -> None:
        """Drop a registered view."""
        if name in self._periodic:
            del self._periodic[name]
            return
        registered = self._views.pop(name, None)
        if registered is None:
            raise ViewRegistrationError(f"no view named {name!r}")
        for chronicle_name in registered.view.chronicle_names():
            views = self._by_chronicle.get(chronicle_name)
            if views is not None and registered in views:
                views.remove(registered)
        if self._compiler is not None and registered.root is not None:
            self._compiler.remove_root(registered.root)
            self._plans_stale = True

    # -- lookup ------------------------------------------------------------------------

    def view(self, name: str) -> PersistentView:
        try:
            return self._views[name].view
        except KeyError:
            raise ViewRegistrationError(f"no view named {name!r}") from None

    def periodic(self, name: str) -> PeriodicViewSet:
        try:
            return self._periodic[name]
        except KeyError:
            raise ViewRegistrationError(f"no periodic view named {name!r}") from None

    def views(self) -> Iterator[PersistentView]:
        for registered in self._views.values():
            yield registered.view

    def __contains__(self, name: object) -> bool:
        return name in self._views or name in self._periodic

    def __len__(self) -> int:
        return len(self._views) + len(self._periodic)

    def partition_of(self, name: str) -> Any:
        """The partition declaration of a registered persistent view.

        Returns the view's :class:`~repro.algebra.plan.PartitionSpec`,
        or :data:`~repro.algebra.plan.UNPARTITIONABLE` for views whose
        keys straddle partitions (periodic view sets are always
        unpartitionable — they carry interval state of their own).
        """
        registered = self._views.get(name)
        if registered is not None:
            return registered.partition
        if name in self._periodic:
            return UNPARTITIONABLE
        raise ViewRegistrationError(f"no view named {name!r}")

    @staticmethod
    def merge_stats(many: "Iterable[Dict[str, Any]]") -> Dict[str, Any]:
        """Merge several registries' :attr:`stats` dicts into one.

        The sharded engine keeps one registry per shard; this produces
        the database-wide view: numeric keys are summed, ``per_view``
        entries merge by view name (span counts summed, the most recent
        last-append latency kept — i.e. the max, since shards of one
        batch finish within the same append).
        """
        merged: Dict[str, Any] = {}
        per_view: Dict[str, Dict[str, float]] = {}
        for stats in many:
            for key, value in stats.items():
                if key == "per_view":
                    for name, values in value.items():
                        into = per_view.setdefault(
                            name, {"spans": 0, "last_append_seconds": 0.0}
                        )
                        into["spans"] += values.get("spans", 0)
                        into["last_append_seconds"] = max(
                            into["last_append_seconds"],
                            values.get("last_append_seconds", 0.0),
                        )
                else:
                    merged[key] = merged.get(key, 0) + value
        if per_view:
            merged["per_view"] = per_view
        return merged

    @property
    def stats(self) -> Dict[str, Any]:
        """Routing statistics for every event seen by this registry.

        Keys: ``events``, ``candidate_views``, ``maintained_views``,
        ``prefilter_hits`` / ``prefilter_misses`` (candidates skipped /
        not skipped by the Section 5.2 prefilter), and
        ``compiled_maintained`` / ``interpreted_maintained`` (which
        engine ran the maintenance).  The same numbers are surfaced as
        metrics (``view_prefilter_total{outcome}``,
        ``view_maintained_total{engine}``) when observability is
        installed.

        While observability is installed (either engine), a ``per_view``
        key is added: ``{view: {"spans": n, "last_append_seconds": s}}``
        from that view's ``maintain`` spans — absent entirely when no
        span was ever observed, so uninstrumented runs see the original
        flat shape.
        """
        out: Dict[str, Any] = dict(self._stats)
        if self._per_view:
            out["per_view"] = {
                name: dict(values) for name, values in self._per_view.items()
            }
        return out

    # -- compilation --------------------------------------------------------------------

    def ensure_compiled(self) -> None:
        """(Re)compile every view's plan if registrations changed.

        Called automatically on the first event after a registration
        change; exposed so benchmarks can pay compilation up front.
        """
        if self._compiler is None or not self._plans_stale:
            return
        for registered in self._views.values():
            registered.plan = self._compiler.compile(
                registered.root, partition=registered.partition
            )
        self._plans_stale = False

    def interned_expression(self, name: str) -> Node:
        """The interned (shared-subtree) expression of a registered view."""
        registered = self._views.get(name)
        if registered is None:
            raise ViewRegistrationError(f"no view named {name!r}")
        if registered.root is None:
            raise ViewRegistrationError(
                f"view {name!r} is registered in an interpreted registry"
            )
        return registered.root

    # -- routing -----------------------------------------------------------------------

    def attach(self, group: ChronicleGroup) -> None:
        """Subscribe the registry to a group's append events."""
        group.subscribe(self.on_event)

    def on_event(self, group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]) -> int:
        """Route one append event; returns how many views were maintained.

        Periodic view sets attached to the group route themselves.

        With observability installed, candidate filtering runs inside a
        ``prefilter`` span and each view's maintenance inside its own
        ``maintain`` span (see :mod:`repro.obs`); when it is not, the
        only added cost is one module-attribute load per event.
        """
        obs = obs_runtime.ACTIVE
        tracer = obs.tracer if obs is not None and obs.trace else None
        stats = self._stats
        stats["events"] += 1
        if self._plans_stale:
            self.ensure_compiled()
        candidates: Dict[str, RegisteredView] = {}
        for chronicle_name in event:
            for registered in self._by_chronicle.get(chronicle_name, ()):
                candidates[registered.view.name] = registered
        stats["candidate_views"] += len(candidates)
        if self.prefilter and candidates:
            span = (
                tracer.start("prefilter", candidates=len(candidates))
                if tracer is not None
                else None
            )
            try:
                survivors = [
                    registered
                    for registered in candidates.values()
                    if any(
                        registered.might_be_affected(name, rows)
                        for name, rows in event.items()
                    )
                ]
                hits = len(candidates) - len(survivors)
                stats["prefilter_hits"] += hits
                stats["prefilter_misses"] += len(survivors)
                if obs is not None:
                    if hits:
                        obs.metrics.inc("view_prefilter_total", hits, outcome="hit")
                    if survivors:
                        obs.metrics.inc(
                            "view_prefilter_total", len(survivors), outcome="miss"
                        )
                if span is not None:
                    span.attrs["skipped"] = hits
            finally:
                if span is not None:
                    tracer.finish(span)
        else:
            survivors = list(candidates.values())
        deltas: Optional[Dict[str, Delta]] = None
        cache: Dict[int, Delta] = {}
        maintained = 0
        for registered in survivors:
            if deltas is None:
                deltas = event_deltas(group, event)
            plan = registered.plan
            span = (
                tracer.start(
                    "maintain",
                    view=registered.view.name,
                    engine="compiled" if plan is not None else "interpreted",
                )
                if tracer is not None
                else None
            )
            try:
                if plan is not None:
                    # Compiled path: the plan computes the χ-delta (under
                    # the no-access guard); interned nodes shared between
                    # plans are served from the per-event cache.
                    with maintenance_guard():
                        delta = plan(deltas, cache)
                    folded = registered.view.apply_delta(delta)
                else:
                    # One delta cache per event: views sharing subexpression
                    # objects compute each shared node's delta once.
                    folded = registered.view.apply_event(deltas, cache=cache)
                if span is not None:
                    span.attrs["rows"] = folded
            finally:
                if span is not None:
                    tracer.finish(span)
            if span is not None:
                per_view = self._per_view.get(registered.view.name)
                if per_view is None:
                    per_view = self._per_view[registered.view.name] = {
                        "spans": 0,
                        "last_append_seconds": 0.0,
                    }
                per_view["spans"] += 1
                per_view["last_append_seconds"] = span.duration
            stats[
                "compiled_maintained" if plan is not None else "interpreted_maintained"
            ] += 1
            maintained += 1
        stats["maintained_views"] += maintained
        return maintained
