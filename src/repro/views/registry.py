"""Identifying affected persistent views (Section 5.2).

"When multiple views are to be maintained over the same chronicle, each
update to the chronicle would require checking all the views to determine
if they need to be updated."  The registry avoids that with two filters:

1. **dependency index** — chronicle name → views depending on it, so an
   append only visits views over the touched chronicles;
2. **selection prefilter** — for each (view, chronicle) pair, the
   conjunction of selection predicates sitting between the view's scan of
   that chronicle and any non-selection operator.  A delta none of whose
   rows pass the prefilter cannot change the view, so its (more
   expensive) delta propagation is skipped.  This is the cheap
   update-independence test of [LS93] specialized to CA's predicate
   fragment.

The registry is also the natural owner of periodic view sets: only the
views *active* for the current interval are maintained (third bullet of
Section 5.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..algebra.ast import ChronicleScan, Node, Select
from ..core.delta import Delta
from ..core.group import ChronicleGroup
from ..errors import ViewRegistrationError
from ..relational.predicate import Predicate, conjunction
from ..relational.tuples import Row
from ..sca.maintenance import event_deltas
from ..sca.view import PersistentView
from .periodic import PeriodicViewSet


def scan_prefilters(expression: Node) -> Dict[str, List[Predicate]]:
    """Per-chronicle prefilter predicates of an expression.

    For every base-chronicle scan, collect the selection predicates that
    apply directly above it (before any reshaping operator), then AND
    them per chronicle.  Rows failing the prefilter can be discarded
    before delta propagation.  A chronicle scanned twice with different
    filters gets the OR-semantics of "any scan might accept the row" by
    keeping the predicate lists separate — callers must pass a row when
    *any* scan's conjunction accepts it.
    """
    filters: Dict[str, List[Predicate]] = {}
    unfiltered: set = set()

    def descend(node: Node, pending: Tuple[Predicate, ...]) -> None:
        if isinstance(node, Select):
            descend(node.child, pending + (node.predicate,))
            return
        if isinstance(node, ChronicleScan):
            name = node.chronicle.name
            filters.setdefault(name, [])
            if pending and name not in unfiltered:
                filters[name].append(conjunction(list(pending)))
            else:
                # An unfiltered scan accepts everything: no prefilter for
                # this chronicle, regardless of other (filtered) scans.
                unfiltered.add(name)
                filters[name] = []
            return
        for child in node.children:
            descend(child, ())

    descend(expression, ())
    return filters


class RegisteredView:
    """Registry bookkeeping for one persistent view."""

    __slots__ = ("view", "prefilters")

    def __init__(self, view: PersistentView) -> None:
        self.view = view
        self.prefilters = scan_prefilters(view.expression)

    def might_be_affected(self, chronicle_name: str, rows: Tuple[Row, ...]) -> bool:
        """Cheap test: could this delta change the view?"""
        if chronicle_name not in self.prefilters:
            return False
        predicates = self.prefilters[chronicle_name]
        if not predicates:
            return True  # some scan of the chronicle is unfiltered
        return any(
            predicate.evaluate(row) for row in rows for predicate in predicates
        )


class ViewRegistry:
    """Owns every persistent view of a database and routes appends.

    Parameters
    ----------
    prefilter:
        Enable the selection prefilter (disable to measure its benefit —
        benchmark E9 does exactly that).
    """

    def __init__(self, prefilter: bool = True) -> None:
        self.prefilter = prefilter
        self._views: Dict[str, RegisteredView] = {}
        self._periodic: Dict[str, PeriodicViewSet] = {}
        self._by_chronicle: Dict[str, List[RegisteredView]] = {}
        self._stats = {"events": 0, "candidate_views": 0, "maintained_views": 0}

    # -- registration -----------------------------------------------------------------

    def register(self, view: PersistentView) -> PersistentView:
        """Register a persistent view for maintenance."""
        if view.name in self._views or view.name in self._periodic:
            raise ViewRegistrationError(f"view name {view.name!r} already registered")
        registered = RegisteredView(view)
        self._views[view.name] = registered
        for chronicle_name in view.chronicle_names():
            self._by_chronicle.setdefault(chronicle_name, []).append(registered)
        return view

    def register_periodic(self, view_set: PeriodicViewSet, group: ChronicleGroup) -> PeriodicViewSet:
        """Register a periodic view set (it handles its own routing)."""
        if view_set.name in self._views or view_set.name in self._periodic:
            raise ViewRegistrationError(f"view name {view_set.name!r} already registered")
        self._periodic[view_set.name] = view_set
        view_set.attach(group)
        return view_set

    def unregister(self, name: str) -> None:
        """Drop a registered view."""
        if name in self._periodic:
            del self._periodic[name]
            return
        registered = self._views.pop(name, None)
        if registered is None:
            raise ViewRegistrationError(f"no view named {name!r}")
        for views in self._by_chronicle.values():
            if registered in views:
                views.remove(registered)

    # -- lookup ------------------------------------------------------------------------

    def view(self, name: str) -> PersistentView:
        try:
            return self._views[name].view
        except KeyError:
            raise ViewRegistrationError(f"no view named {name!r}") from None

    def periodic(self, name: str) -> PeriodicViewSet:
        try:
            return self._periodic[name]
        except KeyError:
            raise ViewRegistrationError(f"no periodic view named {name!r}") from None

    def views(self) -> Iterator[PersistentView]:
        for registered in self._views.values():
            yield registered.view

    def __contains__(self, name: object) -> bool:
        return name in self._views or name in self._periodic

    def __len__(self) -> int:
        return len(self._views) + len(self._periodic)

    @property
    def stats(self) -> Dict[str, int]:
        """Routing statistics: events, candidate views, maintained views."""
        return dict(self._stats)

    # -- routing -----------------------------------------------------------------------

    def attach(self, group: ChronicleGroup) -> None:
        """Subscribe the registry to a group's append events."""
        group.subscribe(self.on_event)

    def on_event(self, group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]) -> int:
        """Route one append event; returns how many views were maintained.

        Periodic view sets attached to the group route themselves.
        """
        self._stats["events"] += 1
        candidates: Dict[str, RegisteredView] = {}
        for chronicle_name in event:
            for registered in self._by_chronicle.get(chronicle_name, ()):
                candidates[registered.view.name] = registered
        self._stats["candidate_views"] += len(candidates)
        deltas: Optional[Dict[str, Delta]] = None
        cache: Dict[int, Delta] = {}
        maintained = 0
        for registered in candidates.values():
            if self.prefilter and not any(
                registered.might_be_affected(name, rows)
                for name, rows in event.items()
            ):
                continue
            if deltas is None:
                deltas = event_deltas(group, event)
            # One delta cache per event: views sharing subexpression
            # objects compute each shared node's delta once.
            registered.view.apply_event(deltas, cache=cache)
            maintained += 1
        self._stats["maintained_views"] += maintained
        return maintained
