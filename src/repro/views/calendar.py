"""Calendars: sets of time intervals for periodic views (Section 5.1).

A calendar D is a (possibly infinite) set of intervals over chronons, in
the spirit of [SS92, CSS94].  A periodic view V⟨D⟩ denotes one view per
interval; the system only ever materializes the finitely many *current*
intervals, relying on expiration to reclaim the rest.

Intervals are half-open ``[start, end)`` so consecutive periods tile the
time line without overlap; overlapping calendars (sliding windows) are
first-class.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import CalendarError


class Interval:
    """A half-open chronon interval ``[start, end)``."""

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float) -> None:
        if end <= start:
            raise CalendarError(f"empty interval [{start}, {end})")
        self.start = start
        self.end = end

    def contains(self, chronon: float) -> bool:
        return self.start <= chronon < self.end

    __contains__ = contains

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    @property
    def width(self) -> float:
        return self.end - self.start

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end})"


class Calendar:
    """Base class: an ordered set of intervals over chronons."""

    def interval_at(self, index: int) -> Interval:
        """The index-th interval (0-based)."""
        raise NotImplementedError

    def indices_containing(self, chronon: float) -> List[int]:
        """Indices of every interval containing *chronon*.

        Non-overlapping calendars return zero or one index; sliding
        windows may return several.
        """
        raise NotImplementedError

    def is_finite(self) -> bool:
        """Whether the calendar has finitely many intervals."""
        raise NotImplementedError

    def intervals(self, limit: Optional[int] = None) -> Iterator[Interval]:
        """Iterate intervals in order (bounded by *limit* when infinite)."""
        count = len(self) if self.is_finite() else limit
        if count is None:
            raise CalendarError("iterating an infinite calendar requires a limit")
        for index in range(count):
            yield self.interval_at(index)

    def __len__(self) -> int:
        raise CalendarError(f"{type(self).__name__} is infinite")


class PeriodicCalendar(Calendar):
    """Evenly spaced, possibly overlapping intervals.

    Interval *i* is ``[origin + i*stride, origin + i*stride + width)``.
    ``stride == width`` gives tiling periods (billing months);
    ``stride < width`` gives sliding windows (30-day moving totals,
    advanced daily, have ``width=30, stride=1``).

    Parameters
    ----------
    origin:
        Start of interval 0.
    width:
        Interval width (> 0).
    stride:
        Distance between consecutive starts (> 0); defaults to *width*.
    count:
        Number of intervals; ``None`` for an unbounded calendar.
    """

    def __init__(
        self,
        origin: float,
        width: float,
        stride: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        if width <= 0:
            raise CalendarError("interval width must be positive")
        stride = width if stride is None else stride
        if stride <= 0:
            raise CalendarError("stride must be positive")
        if count is not None and count <= 0:
            raise CalendarError("count must be positive or None")
        self.origin = origin
        self.width = width
        self.stride = stride
        self.count = count

    def interval_at(self, index: int) -> Interval:
        if index < 0 or (self.count is not None and index >= self.count):
            raise CalendarError(f"interval index {index} out of range")
        start = self.origin + index * self.stride
        return Interval(start, start + self.width)

    def indices_containing(self, chronon: float) -> List[int]:
        if chronon < self.origin:
            return []
        offset = chronon - self.origin
        # interval i contains t iff  i*stride <= offset < i*stride + width
        low = int((offset - self.width) // self.stride) + 1
        high = int(offset // self.stride)
        indices = []
        for index in range(max(low, 0), high + 1):
            if self.count is not None and index >= self.count:
                break
            if self.interval_at(index).contains(chronon):
                indices.append(index)
        return indices

    def is_finite(self) -> bool:
        return self.count is not None

    def __len__(self) -> int:
        if self.count is None:
            return super().__len__()
        return self.count

    def __repr__(self) -> str:
        n = self.count if self.count is not None else "∞"
        return (
            f"PeriodicCalendar(origin={self.origin}, width={self.width}, "
            f"stride={self.stride}, count={n})"
        )


class ExplicitCalendar(Calendar):
    """A finite, explicitly listed set of intervals (sorted by start)."""

    def __init__(self, intervals: List[Tuple[float, float]]) -> None:
        if not intervals:
            raise CalendarError("explicit calendar requires at least one interval")
        self._intervals = sorted(
            (Interval(start, end) for start, end in intervals),
            key=lambda iv: (iv.start, iv.end),
        )

    def interval_at(self, index: int) -> Interval:
        try:
            return self._intervals[index]
        except IndexError:
            raise CalendarError(f"interval index {index} out of range") from None

    def indices_containing(self, chronon: float) -> List[int]:
        return [
            index
            for index, interval in enumerate(self._intervals)
            if interval.contains(chronon)
        ]

    def is_finite(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._intervals)

    def __repr__(self) -> str:
        return f"ExplicitCalendar({self._intervals!r})"


def monthly(origin: float = 0.0, month_length: float = 30.0,
            count: Optional[int] = None) -> PeriodicCalendar:
    """Billing-month style calendar: tiling periods of *month_length*."""
    return PeriodicCalendar(origin, month_length, count=count)


def sliding(window: float, step: float, origin: float = 0.0,
            count: Optional[int] = None) -> PeriodicCalendar:
    """Moving-window calendar: width *window*, advanced by *step*."""
    return PeriodicCalendar(origin, window, stride=step, count=count)
