"""Batch-to-incremental conversion (Section 5.3).

"Applications often define computations applying to a batch of
transactions … a popular telephone discounting plan gives a discount of
10% on all calls made if the monthly undiscounted expenses exceed $10, a
discount of 20% if the expenses exceed $25, and so on.  Converting
computations on a batch of records to an equivalent incremental
computation on individual records is an exercise akin to devising
algorithms for incremental view maintenance."

The conversion here is the paper's "nontrivial mapping for incrementally
computing a persistent view for total_expenses":

* the *batch* computation folds a period's records once, at period end;
* the *incremental* computation maintains the running per-key total as a
  persistent view (SUM), and derives the tiered result *functionally*
  from the total on every read — so it is always current and exactly
  equals the batch result at period end.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence, Tuple

from ..errors import ChronicleError


class TierSchedule:
    """A tiered-rate schedule: the rate applying to a running total.

    Parameters
    ----------
    tiers:
        ``(threshold, rate)`` pairs: *rate* applies when the total
        strictly exceeds *threshold*.  The base rate below the lowest
        threshold is 0.  E.g. the paper's phone plan:
        ``[(10.0, 0.10), (25.0, 0.20)]``.
    """

    def __init__(self, tiers: Sequence[Tuple[float, float]]) -> None:
        tiers = sorted(tiers)
        if not tiers:
            raise ChronicleError("a tier schedule requires at least one tier")
        thresholds = [t for t, _ in tiers]
        if len(set(thresholds)) != len(thresholds):
            raise ChronicleError("tier thresholds must be distinct")
        self.tiers: Tuple[Tuple[float, float], ...] = tuple(tiers)

    def rate_for(self, total: float) -> float:
        """The discount rate applying to *total*."""
        rate = 0.0
        for threshold, tier_rate in self.tiers:
            if total > threshold:
                rate = tier_rate
            else:
                break
        return rate

    def discount_for(self, total: float) -> float:
        """The discount amount: ``rate_for(total) * total``."""
        return self.rate_for(total) * total

    def net_for(self, total: float) -> float:
        """The discounted amount payable."""
        return total - self.discount_for(total)

    def __repr__(self) -> str:
        return f"TierSchedule({list(self.tiers)})"


class IncrementalTieredComputation:
    """The incremental form: per-record O(1), always current.

    Maintains per-key running totals; the tiered outputs are derived on
    read.  This mirrors maintaining a ``SUM(amount) GROUP BY key``
    persistent view plus a functional post-map, which is how a chronicle
    database would express it (see ``examples/telecom_billing.py``).
    """

    def __init__(self, schedule: TierSchedule) -> None:
        self.schedule = schedule
        self._totals: Dict[Hashable, float] = {}
        self._records = 0

    def observe(self, key: Hashable, amount: float) -> None:
        """Process one transaction record — O(1)."""
        self._totals[key] = self._totals.get(key, 0.0) + amount
        self._records += 1

    def total(self, key: Hashable) -> float:
        """Running undiscounted total for *key*."""
        return self._totals.get(key, 0.0)

    def rate(self, key: Hashable) -> float:
        """Current discount rate for *key* (usable mid-period)."""
        return self.schedule.rate_for(self.total(key))

    def discount(self, key: Hashable) -> float:
        """Current discount amount for *key*."""
        return self.schedule.discount_for(self.total(key))

    def net(self, key: Hashable) -> float:
        """Current net (discounted) amount payable for *key*."""
        return self.schedule.net_for(self.total(key))

    def statement(self) -> Dict[Hashable, Tuple[float, float, float]]:
        """Period statement: key → (total, discount, net)."""
        return {
            key: (
                total,
                self.schedule.discount_for(total),
                self.schedule.net_for(total),
            )
            for key, total in self._totals.items()
        }

    def reset(self) -> None:
        """Start a new period (totals reclaimed)."""
        self._totals.clear()
        self._records = 0

    @property
    def records_processed(self) -> int:
        return self._records

    def __len__(self) -> int:
        return len(self._totals)


def batch_tiered_computation(
    schedule: TierSchedule,
    records: Iterable[Tuple[Hashable, float]],
) -> Dict[Hashable, Tuple[float, float, float]]:
    """The batch form: fold a whole period's records at period end.

    Returns the same statement shape as
    :meth:`IncrementalTieredComputation.statement`; the test suite checks
    exact equality — the correctness condition of the Section 5.3
    conversion.
    """
    totals: Dict[Hashable, float] = {}
    for key, amount in records:
        totals[key] = totals.get(key, 0.0) + amount
    return {
        key: (
            total,
            schedule.discount_for(total),
            schedule.net_for(total),
        )
        for key, total in totals.items()
    }
