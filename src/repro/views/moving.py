"""Cyclic-buffer optimization for overlapping periodic views (Section 5.1).

The paper's example: a daily view of total shares sold during the
preceding 30 days.  Instead of maintaining 30 overlapping interval views
(each append folds into up to 30 views), "keep the total number of shares
sold for each of the last 30 days separately, and derive the view as the
sum of these 30 numbers.  Moving from one periodic view to the next one
involves shifting a cyclic buffer".

:class:`MovingWindowAggregate` generalizes that recipe to any
incrementally computable aggregate:

* one partial accumulator per *bucket* (day);
* appends step only the current bucket — O(1);
* rolling to the next bucket shifts the cyclic buffer — O(1) for
  invertible aggregates (SUM, COUNT, AVG, VAR) via ``unmerge``, O(width)
  re-merge for the rest (MIN, MAX), still independent of the number of
  records;
* the window value is the merge of the live buckets.

:class:`KeyedMovingWindow` maintains one such window per group key (per
stock symbol, per account, ...).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Hashable, Iterator, Optional, Tuple

from ..aggregates.base import IncrementalAggregate
from ..complexity.counters import GLOBAL_COUNTERS
from ..errors import AggregateError


class MovingWindowAggregate:
    """A sliding window of *width* buckets over one value stream.

    Parameters
    ----------
    aggregate:
        Any mergeable incremental aggregate.  Invertible aggregates get
        the O(1) roll; merely mergeable ones pay O(width) per roll.
    width:
        Number of buckets in the window (e.g. 30 days).
    """

    __slots__ = ("aggregate", "width", "_buckets", "_running", "_invertible")

    def __init__(self, aggregate: IncrementalAggregate, width: int) -> None:
        if width <= 0:
            raise AggregateError("window width must be positive")
        if not aggregate.mergeable:
            raise AggregateError(
                f"{aggregate.name} is not mergeable; the cyclic-buffer "
                f"optimization needs decomposable partial states"
            )
        self.aggregate = aggregate
        self.width = width
        self._buckets: Deque[Any] = deque([aggregate.initial() for _ in range(width)])
        self._invertible = aggregate.invertible
        self._running: Optional[Any] = aggregate.initial() if self._invertible else None

    def add(self, value: Any) -> None:
        """Fold one value into the current (most recent) bucket — O(1)."""
        GLOBAL_COUNTERS.count("aggregate_step")
        self._buckets[-1] = self.aggregate.step(self._buckets[-1], value)
        if self._invertible:
            self._running = self.aggregate.step(self._running, value)

    def roll(self) -> None:
        """Advance the window by one bucket (shift the cyclic buffer)."""
        evicted = self._buckets.popleft()
        self._buckets.append(self.aggregate.initial())
        if self._invertible:
            GLOBAL_COUNTERS.count("aggregate_step")
            self._running = self.aggregate.unmerge(self._running, evicted)

    def roll_to(self, buckets_forward: int) -> None:
        """Advance by several buckets (gap in the stream)."""
        if buckets_forward >= self.width:
            # Every live bucket is evicted; reset cleanly in O(width).
            self._buckets = deque(self.aggregate.initial() for _ in range(self.width))
            if self._invertible:
                self._running = self.aggregate.initial()
            return
        for _ in range(buckets_forward):
            self.roll()

    def state(self) -> Any:
        """The merged accumulator over the live window."""
        if self._invertible:
            return self._running
        merged = self.aggregate.initial()
        for bucket in self._buckets:
            GLOBAL_COUNTERS.count("aggregate_step")
            merged = self.aggregate.merge(merged, bucket)
        return merged

    def current(self) -> Any:
        """The window's aggregate value (finalized)."""
        return self.aggregate.finalize(self.state())

    def __repr__(self) -> str:
        return (
            f"MovingWindowAggregate({self.aggregate.name}, width={self.width}, "
            f"value={self.current()!r})"
        )


class KeyedMovingWindow:
    """One :class:`MovingWindowAggregate` per group key, advanced together.

    The bucket boundary is driven by a chronon: ``observe`` places the
    value in the bucket ``floor((chronon - origin) / bucket_width)`` and
    rolls every window forward when the boundary advances.

    Parameters
    ----------
    aggregate, width:
        As for :class:`MovingWindowAggregate`.
    bucket_width:
        Chronon span of one bucket (e.g. one day).
    origin:
        Chronon where bucket 0 starts.
    """

    def __init__(
        self,
        aggregate: IncrementalAggregate,
        width: int,
        bucket_width: float = 1.0,
        origin: float = 0.0,
    ) -> None:
        if bucket_width <= 0:
            raise AggregateError("bucket width must be positive")
        self.aggregate = aggregate
        self.width = width
        self.bucket_width = bucket_width
        self.origin = origin
        self._windows: Dict[Hashable, MovingWindowAggregate] = {}
        self._bucket: Optional[int] = None

    def _bucket_of(self, chronon: float) -> int:
        return int((chronon - self.origin) // self.bucket_width)

    def observe(self, key: Hashable, value: Any, chronon: float) -> None:
        """Fold one record into the window for *key* at *chronon*.

        Chronons must be non-decreasing (chronicle order).
        """
        bucket = self._bucket_of(chronon)
        if self._bucket is None:
            self._bucket = bucket
        elif bucket < self._bucket:
            raise AggregateError(
                f"chronon {chronon} regresses to bucket {bucket} < {self._bucket}; "
                f"moving windows require chronicle (non-decreasing) order"
            )
        elif bucket > self._bucket:
            forward = bucket - self._bucket
            for window in self._windows.values():
                window.roll_to(forward)
            self._bucket = bucket
        window = self._windows.get(key)
        if window is None:
            window = MovingWindowAggregate(self.aggregate, self.width)
            self._windows[key] = window
        window.add(value)

    def advance_to(self, chronon: float) -> None:
        """Roll every window forward to *chronon* without adding a value."""
        bucket = self._bucket_of(chronon)
        if self._bucket is None:
            self._bucket = bucket
            return
        if bucket > self._bucket:
            forward = bucket - self._bucket
            for window in self._windows.values():
                window.roll_to(forward)
            self._bucket = bucket

    def current(self, key: Hashable) -> Any:
        """Window aggregate for *key* (aggregate-of-empty when unseen)."""
        window = self._windows.get(key)
        if window is None:
            return self.aggregate.finalize(self.aggregate.initial())
        return window.current()

    def keys(self) -> Iterator[Hashable]:
        return iter(self._windows)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for key, window in self._windows.items():
            yield key, window.current()

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return (
            f"KeyedMovingWindow({self.aggregate.name}, width={self.width}, "
            f"keys={len(self._windows)}, bucket={self._bucket})"
        )
