"""Periodic persistent views: V⟨D⟩ (Section 5.1).

Given a summary view definition V and a calendar D, the periodic view
V⟨D⟩ specifies one view V_i per interval i of D: V with an extra
selection restricting chronicle tuples to the interval (under the mapping
from sequence numbers to chronons).  A :class:`PeriodicViewSet`
implements this with:

* **lazy instantiation** — V_i is materialized only once a tuple (or an
  explicit request) touches interval i, so infinite calendars are fine;
* **active-set maintenance** — only views whose interval could still
  receive tuples are maintained ("start maintaining a view as soon as its
  time interval starts, and stop … as soon as its interval ends");
* **expiration** — a view is dropped ``expire_after`` chronons past its
  interval's end, allowing the system to "implement an infinite number of
  periodic views, provided only a finite number of them are current".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.delta import Delta
from ..core.group import ChronicleGroup
from ..errors import ViewExpiredError
from ..relational.tuples import Row
from ..sca.summarize import Summary
from ..sca.view import PersistentView

#: Maps a base-chronicle row to its chronon.
ChrononOf = Callable[[Row], float]


class PeriodicViewSet:
    """The family of views V_i induced by a summary and a calendar.

    Parameters
    ----------
    name:
        Family name; interval views are named ``name[i]``.
    summary:
        The SCA summary template V.  Interval views share the (stateless)
        summary and expression; each holds its own materialized state.
    calendar:
        The calendar D.
    chronon_of:
        Row → chronon mapping used to place base-chronicle tuples into
        intervals.  Defaults to the owning group's chronon mapper applied
        to the row's sequence number, per Section 5.1 ("a mapping from
        sequence numbers in a chronicle to time intervals").
    expire_after:
        Chronons past an interval's end after which its view is dropped;
        ``None`` disables expiration.
    on_expire:
        Callback ``(index, view)`` invoked when a view expires — e.g. to
        emit the billing statement the interval's totals represent.
    """

    def __init__(
        self,
        name: str,
        summary: Summary,
        calendar: Any,
        chronon_of: Optional[ChrononOf] = None,
        expire_after: Optional[float] = None,
        on_expire: Optional[Callable[[int, PersistentView], None]] = None,
    ) -> None:
        self.name = name
        self.summary = summary
        self.calendar = calendar
        self._chronon_of = chronon_of
        self.expire_after = expire_after
        self.on_expire = on_expire
        self._active: Dict[int, PersistentView] = {}
        self._expired: set = set()
        self._clock: Optional[float] = None  # latest chronon observed
        self._instantiated = 0
        #: Only rows from these chronicles are routed into intervals.
        self._dependencies = {c.name for c in summary.expression.chronicles()}

    # -- wiring ------------------------------------------------------------------

    def attach(self, group: ChronicleGroup) -> None:
        """Subscribe to a group's append events."""
        if self._chronon_of is None:
            chronons = group.chronons

            def default_chronon(row: Row) -> float:
                return chronons.chronon(row.sequence_number)

            self._chronon_of = default_chronon
        group.subscribe(self._listener)

    def _listener(self, group: ChronicleGroup, event: Mapping[str, Tuple[Row, ...]]) -> None:
        deltas = {
            name: Delta(group[name].schema, rows)
            for name, rows in event.items()
            if rows
        }
        if deltas:
            self.route_event(deltas)

    # -- maintenance ----------------------------------------------------------------

    def route_event(self, deltas: Mapping[str, Delta]) -> int:
        """Split one event across interval views and maintain each.

        Returns the number of interval views touched.
        """
        assert self._chronon_of is not None, "attach() the view set first"
        per_interval: Dict[int, Dict[str, List[Row]]] = {}
        for chronicle_name, delta in deltas.items():
            if chronicle_name not in self._dependencies:
                continue
            for row in delta.rows:
                chronon = self._chronon_of(row)
                if self._clock is None or chronon > self._clock:
                    self._clock = chronon
                for index in self.calendar.indices_containing(chronon):
                    if index in self._expired:
                        continue
                    bucket = per_interval.setdefault(index, {})
                    bucket.setdefault(chronicle_name, []).append(row)
        for index, rows_by_chronicle in per_interval.items():
            view = self._view(index)
            view.apply_event(
                {
                    name: Delta(deltas[name].schema, rows)
                    for name, rows in rows_by_chronicle.items()
                }
            )
        self._expire_stale()
        return len(per_interval)

    def _view(self, index: int) -> PersistentView:
        view = self._active.get(index)
        if view is None:
            view = PersistentView(f"{self.name}[{index}]", self.summary)
            self._active[index] = view
            self._instantiated += 1
        return view

    def _expire_stale(self) -> None:
        if self.expire_after is None or self._clock is None:
            return
        stale = [
            index
            for index in self._active
            if self.calendar.interval_at(index).end + self.expire_after <= self._clock
        ]
        for index in stale:
            view = self._active.pop(index)
            self._expired.add(index)
            if self.on_expire is not None:
                self.on_expire(index, view)

    # -- queries -----------------------------------------------------------------------

    def view(self, index: int) -> PersistentView:
        """The view for interval *index* (instantiating it when fresh).

        Raises :class:`ViewExpiredError` for expired intervals.
        """
        if index in self._expired:
            raise ViewExpiredError(
                f"periodic view {self.name}[{index}] expired "
                f"(interval {self.calendar.interval_at(index)!r})"
            )
        return self._view(index)

    def __getitem__(self, index: int) -> PersistentView:
        return self.view(index)

    def active_indices(self) -> List[int]:
        """Indices of currently materialized interval views, sorted."""
        return sorted(self._active)

    def active_views(self) -> Iterator[Tuple[int, PersistentView]]:
        for index in self.active_indices():
            yield index, self._active[index]

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def instantiated_count(self) -> int:
        """Lifetime number of interval views ever materialized."""
        return self._instantiated

    def __repr__(self) -> str:
        return (
            f"PeriodicViewSet({self.name!r}, active={sorted(self._active)}, "
            f"expired={len(self._expired)})"
        )
