"""Derived queries over persistent views.

"Once a relation is defined using SCA, it could be further manipulated by
using relational algebra and the other relations in the system, to define
a persistent view" (after Definition 4.3).  Persistent views are small —
that is the whole point — so derived manipulation is evaluated *on read*
over the materialized rows, staying trivially consistent with
maintenance (no extra state, nothing further to maintain).

:class:`ViewQuery` is a fluent, lazily evaluated pipeline::

    top_spenders = (ViewQuery(db.view("spend"))
                    .where(attr_cmp("cents", ">", 100_00))
                    .join(db.relation("cardholders"), [("card", "card")])
                    .order_by("cents", descending=True)
                    .limit(10))
    for row in top_spenders:
        ...

Each combinator returns a new query; nothing runs until iteration.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ViewError
from ..relational.algebra import Table, equi_join as ra_equi_join
from ..relational.predicate import Predicate
from ..relational.schema import Schema
from ..relational.tuples import Row


class ViewQuery:
    """A lazy relational pipeline over a view's (or relation's) rows.

    Parameters
    ----------
    source:
        Anything with a ``schema``-compatible row iterator: a
        :class:`~repro.sca.view.PersistentView`, a relation, or another
        :class:`ViewQuery`.
    """

    def __init__(self, source: Any) -> None:
        self._source = source
        self._steps: List[Callable[[Table], Table]] = []

    # -- combinators ---------------------------------------------------------------

    def _extended(self, step: Callable[[Table], Table]) -> "ViewQuery":
        clone = ViewQuery(self._source)
        clone._steps = self._steps + [step]
        return clone

    def where(self, predicate: Predicate) -> "ViewQuery":
        """Keep rows satisfying *predicate*."""

        def step(table: Table) -> Table:
            return Table(
                table.schema,
                [row for row in table.rows if predicate.evaluate(row)],
                dedup=False,
            )

        return self._extended(step)

    def project(self, names: Sequence[str]) -> "ViewQuery":
        """Project onto *names* (set semantics)."""
        names = list(names)

        def step(table: Table) -> Table:
            schema = table.schema.project(names)
            return Table(schema, [row.project(names, schema) for row in table.rows])

        return self._extended(step)

    def join(
        self,
        other: Any,
        pairs: Sequence[Tuple[str, str]],
    ) -> "ViewQuery":
        """Equi-join with a relation / view on ``(left, right)`` pairs."""
        pairs = [tuple(p) for p in pairs]

        def step(table: Table) -> Table:
            right = Table(other.schema, list(other.rows()), dedup=False)
            return ra_equi_join(table, right, pairs)

        return self._extended(step)

    def order_by(self, name: str, descending: bool = False) -> "ViewQuery":
        """Sort by one attribute."""

        def step(table: Table) -> Table:
            position = table.schema.position(name)
            rows = sorted(
                table.rows, key=lambda row: row.values[position], reverse=descending
            )
            return Table(table.schema, rows, dedup=False)

        return self._extended(step)

    def limit(self, count: int) -> "ViewQuery":
        """Keep the first *count* rows (after any ordering)."""
        if count < 0:
            raise ViewError("limit must be non-negative")

        def step(table: Table) -> Table:
            return Table(table.schema, table.rows[:count], dedup=False)

        return self._extended(step)

    def map_rows(self, fn: Callable[[Row], Row], schema: Schema) -> "ViewQuery":
        """Arbitrary row transformation into *schema* (escape hatch)."""

        def step(table: Table) -> Table:
            return Table(schema, [fn(row) for row in table.rows], dedup=False)

        return self._extended(step)

    # -- evaluation --------------------------------------------------------------------

    def to_table(self) -> Table:
        """Run the pipeline over the source's current rows."""
        source = self._source
        if isinstance(source, ViewQuery):
            table = source.to_table()
        else:
            table = Table(source.schema, list(source.rows()), dedup=False)
        for step in self._steps:
            table = step(table)
        return table

    def rows(self) -> Iterator[Row]:
        return iter(self.to_table().rows)

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        return len(self.to_table())

    def first(self) -> Optional[Row]:
        """The first result row, or ``None``."""
        table = self.to_table()
        return table.rows[0] if table.rows else None

    def values(self, name: str) -> List[Any]:
        """One attribute's values, in pipeline order."""
        table = self.to_table()
        position = table.schema.position(name)
        return [row.values[position] for row in table.rows]


def top_k(view: Any, by: str, k: int, descending: bool = True) -> List[Row]:
    """Convenience: the top-*k* view rows by attribute *by*."""
    return list(ViewQuery(view).order_by(by, descending=descending).limit(k))
