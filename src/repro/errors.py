"""Exception hierarchy for the chronicle data model.

Every error raised by this library derives from :class:`ChronicleError`,
so callers can catch the whole family with one clause.  Sub-hierarchies
mirror the layers of the system: schema/typing problems, storage problems,
chronicle-model rule violations, algebra/language violations, and query
language errors.
"""

from __future__ import annotations


class ChronicleError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Relational substrate errors
# ---------------------------------------------------------------------------


class SchemaError(ChronicleError):
    """A schema is malformed or two schemas are incompatible."""


class TypeMismatchError(SchemaError):
    """A value does not belong to the declared attribute domain."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not define."""


class DuplicateAttributeError(SchemaError):
    """Two attributes with the same name were declared in one schema."""


class IntegrityError(ChronicleError):
    """A relation-level integrity constraint was violated."""


class KeyViolationError(IntegrityError):
    """An insert/update would duplicate a key value."""


class ForeignKeyError(IntegrityError):
    """A referenced tuple does not exist in the target relation."""


# ---------------------------------------------------------------------------
# Chronicle model rule violations (Section 2 of the paper)
# ---------------------------------------------------------------------------


class ChronicleModelError(ChronicleError):
    """A rule of the chronicle data model was violated."""


class SequenceOrderError(ChronicleModelError):
    """An append used a sequence number not greater than all existing ones.

    The chronicle model permits only inserts whose sequence number exceeds
    every sequence number already present in the chronicle *group*
    (Section 2.1 / Section 4 of the paper).
    """


class RetroactiveUpdateError(ChronicleModelError):
    """A relation update would affect already-processed chronicle tuples.

    Only *proactive* updates are part of the chronicle model (Section 2.3);
    retroactive updates would require reprocessing chronicle history that
    may no longer be stored.
    """


class ChronicleGroupError(ChronicleModelError):
    """An operation combined chronicles from different chronicle groups."""


class ChronicleAccessError(ChronicleModelError):
    """Maintenance code attempted to read a chronicle store.

    Raised by the no-access guard: Theorems 4.2/4.4 require that neither
    the chronicles nor the chronicle-algebra views be accessed during
    incremental maintenance.
    """


class RetentionError(ChronicleModelError):
    """A query requested chronicle tuples outside the retained window."""


# ---------------------------------------------------------------------------
# Algebra / language errors (Section 4)
# ---------------------------------------------------------------------------


class AlgebraError(ChronicleError):
    """A chronicle-algebra expression is structurally invalid."""


class NotAChronicleError(AlgebraError):
    """An operator would produce a result without the sequencing attribute.

    Theorem 4.3(1): projecting out the sequence number, or grouping without
    it, yields a result that is not a chronicle and hence is not allowed
    inside chronicle algebra (it belongs to the summarization step).
    """


class LanguageViolationError(AlgebraError):
    """An expression uses operators outside the declared language fragment.

    For example a chronicle-chronicle cross product (outside CA entirely,
    Theorem 4.3), or a relation product inside CA1, or a non-key join
    inside CA-join.
    """


class KeyJoinGuaranteeError(LanguageViolationError):
    """A CA-join expression joins a relation on a non-key attribute set.

    Definition 4.2 requires that at most a constant number of relation
    tuples join with each chronicle tuple; joining on a key of the
    relation is the sufficient condition this library enforces.
    """


class AggregateError(AlgebraError):
    """An aggregation function is unusable in the requested context."""


class NotIncrementalError(AggregateError):
    """The aggregate is not incrementally computable (or decomposable).

    SCA (Definition 4.3) only admits aggregation functions that can be
    maintained in O(1) per inserted tuple.
    """


# ---------------------------------------------------------------------------
# View management errors (Sections 2, 5)
# ---------------------------------------------------------------------------


class ViewError(ChronicleError):
    """A persistent-view operation failed."""


class ViewExpiredError(ViewError):
    """A periodic view was used after its expiration time (Section 5.1)."""


class ViewRegistrationError(ViewError):
    """View registration conflicted with an existing view."""


class CalendarError(ViewError):
    """A calendar definition is malformed (Section 5.1)."""


# ---------------------------------------------------------------------------
# Configuration / engine errors
# ---------------------------------------------------------------------------


class ConfigError(ChronicleError):
    """A :class:`~repro.core.config.DatabaseConfig` value is invalid."""


class EngineError(ChronicleError):
    """An operation is unsupported by the selected maintenance engine.

    The sharded engine (:mod:`repro.parallel`) gates a few serial-only
    operations — checkpoint/restore of partitioned view state, the
    ``process`` executor — behind this error until they land.
    """


# ---------------------------------------------------------------------------
# Observability errors
# ---------------------------------------------------------------------------


class ObservabilityError(ChronicleError):
    """An observability (tracing / metrics / audit) operation failed."""


class MaintenanceAuditError(ObservabilityError):
    """The live auditor observed a maintenance invariant violation.

    Raised (in ``raise`` mode) when a maintenance span's cost-counter
    diff shows chronicle reads, or unbounded view reads, on the append
    path — the operational form of the Theorem 4.2/4.4 no-access rule.
    """


class ConformanceError(ObservabilityError):
    """A conformance sweep could not be measured.

    Raised when the profiler cannot observe a view's maintenance — e.g.
    the driver records never pass the view's prefilter, so no
    ``maintain`` span is produced to measure.
    """


# ---------------------------------------------------------------------------
# Query language errors
# ---------------------------------------------------------------------------


class QueryError(ChronicleError):
    """Base class for query-language errors."""


class LexError(QueryError):
    """The view definition text could not be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The view definition text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line or column:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class CompileError(QueryError):
    """The parsed view definition could not be compiled to the algebra."""
