"""The chronicle append-ahead log: SQLite-backed batches + snapshots.

One SQLite file per database (``chronicle.db`` inside the configured
durability directory), opened in ``wal`` journal mode.  Two
schema-versioned tables carry the durable state:

``log``
    One row per event, in admission order (the rowid is the recovery
    order).  Kinds: ``batch`` (an admitted append event — the chronicle
    name → stamped value tuples map of PR 6's cross-process dispatch,
    pickled, plus the event watermark), ``ddl`` (a catalog operation:
    group/chronicle/relation/view definitions, interleaved with the
    batches so a view defined mid-stream replays at the right point),
    and ``relupdate`` (a proactive relation update).

``snapshots``
    Watermark-stamped checkpoint documents (the JSON codec shared with
    :mod:`repro.storage.checkpoint`).  Each snapshot records the log
    rowid it covers; writing one truncates the covered ``batch`` /
    ``relupdate`` tail (``ddl`` rows are kept — they rebuild the catalog
    shape before the snapshot's state is loaded).

The fsync policy maps onto SQLite's ``synchronous`` pragma: ``always``
→ FULL (fsync per autocommitted batch insert), ``batch`` → NORMAL
(commit per batch; in WAL mode this survives process crash without a
per-batch fsync — the file is fsynced at snapshot/flush/close), ``off``
→ OFF.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
from typing import Any, Dict, Iterator, NamedTuple, Optional, Tuple

from ..errors import ChronicleError

#: Name of the single durability file inside ``DurabilityConfig.dir``.
WAL_FILENAME = "chronicle.db"

SCHEMA_VERSION = 1

_SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "off": "OFF"}


class WalError(ChronicleError):
    """The append-ahead log could not be opened, written, or read."""


class WalSnapshot(NamedTuple):
    """The latest snapshot: covered log rowid, watermark, document."""

    log_id: int
    watermark: int
    document: Dict[str, Any]


class WalEntry(NamedTuple):
    """One decoded log row, in admission order."""

    entry_id: int
    kind: str
    watermark: int
    payload: Any


def wal_path(directory: str) -> str:
    """The durability file path for a durability directory."""
    return os.path.join(directory, WAL_FILENAME)


class ChronicleWal:
    """The SQLite substrate of the durability subsystem.

    Thread-safe for the engine's single-admission discipline plus
    concurrent reads (a lock serializes statements); all writes are
    autocommitted per statement except snapshots, which commit the
    snapshot row and the log-tail truncation atomically.
    """

    def __init__(self, directory: str, fsync: str = "batch") -> None:
        if fsync not in _SYNCHRONOUS:
            raise WalError(f"unknown fsync policy {fsync!r}")
        os.makedirs(directory, exist_ok=True)
        self.path = wal_path(directory)
        self.fsync = fsync
        self._lock = threading.Lock()
        try:
            self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
                self.path, isolation_level=None, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA synchronous={_SYNCHRONOUS[fsync]}")
            self._ensure_schema()
        except sqlite3.Error as exc:
            raise WalError(f"cannot open append-ahead log {self.path}: {exc}") from exc

    # -- schema ---------------------------------------------------------------

    def _ensure_schema(self) -> None:
        conn = self._require()
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS log ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " kind TEXT NOT NULL,"
            " watermark INTEGER NOT NULL,"
            " payload BLOB NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " log_id INTEGER NOT NULL,"
            " watermark INTEGER NOT NULL,"
            " document TEXT NOT NULL)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) != SCHEMA_VERSION:
            raise WalError(
                f"append-ahead log {self.path} has schema version {row[0]}, "
                f"this build supports {SCHEMA_VERSION}"
            )

    def _require(self) -> sqlite3.Connection:
        if self._conn is None:
            raise WalError(f"append-ahead log {self.path} is closed")
        return self._conn

    @property
    def closed(self) -> bool:
        return self._conn is None

    # -- writes ---------------------------------------------------------------

    def log_batch(
        self, group: str, payload: Dict[str, list], watermark: int
    ) -> int:
        """Append one admitted batch; returns the encoded size in bytes."""
        blob = pickle.dumps((group, payload), protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._require().execute(
                "INSERT INTO log (kind, watermark, payload) VALUES ('batch', ?, ?)",
                (watermark, blob),
            )
        return len(blob)

    def log_ddl(self, op: Tuple[Any, ...], watermark: int) -> None:
        """Append one catalog operation, ordered against the batches."""
        blob = pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._require().execute(
                "INSERT INTO log (kind, watermark, payload) VALUES ('ddl', ?, ?)",
                (watermark, blob),
            )

    def log_relation_update(
        self, name: str, key: Any, changes: Dict[str, Any], watermark: int
    ) -> None:
        """Append one proactive relation update, ordered against the batches."""
        blob = pickle.dumps((name, key, changes), protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._require().execute(
                "INSERT INTO log (kind, watermark, payload)"
                " VALUES ('relupdate', ?, ?)",
                (watermark, blob),
            )

    def write_snapshot(
        self, document: Dict[str, Any], watermark: int
    ) -> Tuple[int, int]:
        """Store a snapshot and truncate the covered log tail.

        Returns ``(snapshot_bytes, truncated_rows)``.  The snapshot row,
        the deletion of older snapshots, and the truncation of covered
        ``batch``/``relupdate`` rows commit atomically; the WAL file is
        checkpointed (fsync) afterwards regardless of the fsync policy.
        """
        text = json.dumps(document)
        with self._lock:
            conn = self._require()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute("SELECT COALESCE(MAX(id), 0) FROM log").fetchone()
                log_id = int(row[0])
                conn.execute("DELETE FROM snapshots")
                conn.execute(
                    "INSERT INTO snapshots (log_id, watermark, document)"
                    " VALUES (?, ?, ?)",
                    (log_id, watermark, text),
                )
                cursor = conn.execute(
                    "DELETE FROM log WHERE id <= ? AND kind != 'ddl'", (log_id,)
                )
                truncated = cursor.rowcount
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("PRAGMA wal_checkpoint(FULL)")
        return len(text), truncated

    def flush(self) -> None:
        """Checkpoint the SQLite WAL file — an explicit fsync barrier."""
        with self._lock:
            self._require().execute("PRAGMA wal_checkpoint(FULL)")

    # -- meta (durable key/value side-state) ----------------------------------

    def set_meta(self, key: str, value: str) -> None:
        """Upsert one ``meta`` row (durable non-log side-state).

        The periodic-view clocks live here: they are not events (replay
        rebuilds nothing from them) but must survive a crash so
        programmatic periodic views resume their cadence after
        ``open()``.
        """
        with self._lock:
            self._require().execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def get_meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._require().execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else str(row[0])

    def meta_items(self, prefix: str) -> Iterator[Tuple[str, str]]:
        """All ``meta`` rows whose key starts with *prefix*, key-ordered."""
        with self._lock:
            rows = self._require().execute(
                "SELECT key, value FROM meta WHERE key >= ? AND key < ?"
                " ORDER BY key",
                (prefix, prefix + "￿"),
            ).fetchall()
        for key, value in rows:
            yield str(key), str(value)

    # -- reads ----------------------------------------------------------------

    def is_fresh(self) -> bool:
        """Whether the log holds no events and no snapshot yet."""
        with self._lock:
            conn = self._require()
            has_log = conn.execute("SELECT 1 FROM log LIMIT 1").fetchone()
            has_snap = conn.execute("SELECT 1 FROM snapshots LIMIT 1").fetchone()
        return has_log is None and has_snap is None

    def latest_snapshot(self) -> Optional[WalSnapshot]:
        with self._lock:
            row = self._require().execute(
                "SELECT log_id, watermark, document FROM snapshots"
                " ORDER BY id DESC LIMIT 1"
            ).fetchone()
        if row is None:
            return None
        return WalSnapshot(int(row[0]), int(row[1]), json.loads(row[2]))

    def ddl_entries(self, up_to: int) -> Iterator[WalEntry]:
        """Catalog operations at or below log rowid *up_to*, in order."""
        with self._lock:
            rows = self._require().execute(
                "SELECT id, watermark, payload FROM log"
                " WHERE kind = 'ddl' AND id <= ? ORDER BY id",
                (up_to,),
            ).fetchall()
        for entry_id, watermark, blob in rows:
            yield WalEntry(entry_id, "ddl", watermark, pickle.loads(blob))

    def entries(self, after: int = 0) -> Iterator[WalEntry]:
        """All log rows above rowid *after*, decoded, in admission order."""
        with self._lock:
            rows = self._require().execute(
                "SELECT id, kind, watermark, payload FROM log"
                " WHERE id > ? ORDER BY id",
                (after,),
            ).fetchall()
        for entry_id, kind, watermark, blob in rows:
            try:
                payload = pickle.loads(blob)
            except Exception as exc:
                raise WalError(
                    f"corrupt log entry {entry_id} ({kind}): {exc}"
                ) from exc
            yield WalEntry(entry_id, kind, watermark, payload)

    def log_rows(self) -> int:
        with self._lock:
            row = self._require().execute("SELECT COUNT(*) FROM log").fetchone()
        return int(row[0])

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying connection (idempotent)."""
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute("PRAGMA wal_checkpoint(FULL)")
            except sqlite3.Error:
                pass
            self._conn.close()
            self._conn = None

    def abort(self) -> None:
        """Fault injection: drop the connection as a crash would.

        No snapshot, no flush, no finalization — whatever SQLite already
        committed is what recovery will see.  Used by the crash-recovery
        tests and the E17 benchmark.
        """
        with self._lock:
            if self._conn is None:
                return
            self._conn.close()
            self._conn = None

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"fsync={self.fsync!r}"
        return f"ChronicleWal({self.path!r}, {state})"
