"""Storage layer: index structures, the durable-value codec, checkpoints,
and the durability subsystem (append-ahead log + snapshots)."""

from .btree import BPlusTree
from .codec import CodecError, decode_value, encode_value
from .hash_index import HashIndex

__all__ = [
    "BPlusTree",
    "CodecError",
    "HashIndex",
    "decode_value",
    "encode_value",
]
