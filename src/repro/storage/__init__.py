"""Index structures: chained hash index and B+-tree."""

from .btree import BPlusTree
from .hash_index import HashIndex

__all__ = ["BPlusTree", "HashIndex"]
