"""Shared value codec for every durable artifact.

Checkpoints, WAL snapshots, and the append-ahead log all serialize the
same things: row value tuples and aggregate accumulator state.  Keeping
one codec means the three artifacts cannot drift on value encoding — a
checkpoint written today restores from the same byte-level conventions a
WAL snapshot replays tomorrow.

The encoding is JSON-compatible: tuples are tagged (JSON has no tuple
type, and accumulators rely on tuple/list distinction), and any value
outside the JSON scalar set is rejected up front rather than silently
coerced.
"""

from __future__ import annotations

from typing import Any

from ..errors import ChronicleError


class CodecError(ChronicleError):
    """A value cannot be encoded for, or decoded from, durable storage."""


def encode_value(value: Any) -> Any:
    """JSON-encode a cell/accumulator value, tagging tuples."""
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CodecError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(decode_value(v) for v in value["__tuple__"])
        raise CodecError(f"unexpected object in durable payload: {value!r}")
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value
