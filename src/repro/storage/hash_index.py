"""Chained hash index.

Hash indexes provide the expected-O(1) lookups used by the trigger-style
baseline and by view location when the view key is an equality key.  The
implementation is a straightforward chained hash table built from scratch
(per the reproduction's "no stubs" rule) rather than a thin dict wrapper:
it resizes by doubling, tracks probe counts through the cost model, and
supports unique and multi-valued modes.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, List, Optional, Tuple

from ..complexity.counters import GLOBAL_COUNTERS, CostCounters
from ..errors import KeyViolationError


class HashIndex:
    """A chained hash table mapping keys to one or many values.

    Parameters
    ----------
    unique:
        When true an insert of a duplicate key raises
        :class:`~repro.errors.KeyViolationError`.
    initial_buckets:
        Starting bucket count (power of two).
    counters:
        Cost-model sink; defaults to the process-wide counters.
    """

    _MAX_LOAD = 0.75

    __slots__ = ("unique", "_buckets", "_size", "_mask", "_counters")

    def __init__(
        self,
        unique: bool = False,
        initial_buckets: int = 8,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if initial_buckets < 1 or initial_buckets & (initial_buckets - 1):
            raise ValueError("initial_buckets must be a positive power of two")
        self.unique = unique
        self._buckets: List[List[Tuple[Hashable, Any]]] = [[] for _ in range(initial_buckets)]
        self._mask = initial_buckets - 1
        self._size = 0
        self._counters = counters if counters is not None else GLOBAL_COUNTERS

    # -- internals ---------------------------------------------------------------

    def _bucket(self, key: Hashable) -> List[Tuple[Hashable, Any]]:
        return self._buckets[hash(key) & self._mask]

    def _grow(self) -> None:
        old = self._buckets
        count = len(old) * 2
        self._buckets = [[] for _ in range(count)]
        self._mask = count - 1
        for bucket in old:
            for key, value in bucket:
                self._buckets[hash(key) & self._mask].append((key, value))

    # -- mutation ----------------------------------------------------------------

    def insert(self, key: Hashable, value: Any) -> None:
        """Insert a ``key → value`` entry."""
        bucket = self._bucket(key)
        if self.unique:
            for existing_key, _ in bucket:
                self._counters.count("index_probe")
                if existing_key == key:
                    raise KeyViolationError(f"duplicate key {key!r} in unique index")
        bucket.append((key, value))
        self._size += 1
        if self._size > self._MAX_LOAD * len(self._buckets):
            self._grow()

    def remove(self, key: Hashable, value: Any = None) -> bool:
        """Remove one entry for *key*.

        With *value* given, removes that specific ``(key, value)`` pair
        (identity of equal values is not distinguished); otherwise removes
        an arbitrary entry for the key.  Returns whether an entry was
        removed.
        """
        bucket = self._bucket(key)
        for position, (existing_key, existing_value) in enumerate(bucket):
            self._counters.count("index_probe")
            if existing_key == key and (value is None or existing_value == value):
                del bucket[position]
                self._size -= 1
                return True
        return False

    def replace(self, key: Hashable, value: Any) -> None:
        """Upsert for unique indexes: overwrite the value stored at *key*."""
        bucket = self._bucket(key)
        for position, (existing_key, _) in enumerate(bucket):
            self._counters.count("index_probe")
            if existing_key == key:
                bucket[position] = (key, value)
                return
        bucket.append((key, value))
        self._size += 1
        if self._size > self._MAX_LOAD * len(self._buckets):
            self._grow()

    def clear(self) -> None:
        """Drop every entry."""
        self._buckets = [[] for _ in range(8)]
        self._mask = 7
        self._size = 0

    # -- lookup -------------------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        """The single value stored at *key* (unique mode), else ``None``."""
        self._counters.count("index_lookup")
        for existing_key, value in self._bucket(key):
            self._counters.count("index_probe")
            if existing_key == key:
                return value
        return None

    def get_all(self, key: Hashable) -> List[Any]:
        """Every value stored at *key* (multi mode)."""
        self._counters.count("index_lookup")
        matches = []
        for existing_key, value in self._bucket(key):
            self._counters.count("index_probe")
            if existing_key == key:
                matches.append(value)
        return matches

    def contains(self, key: Hashable) -> bool:
        """Whether any entry exists for *key*."""
        self._counters.count("index_lookup")
        for existing_key, _ in self._bucket(key):
            self._counters.count("index_probe")
            if existing_key == key:
                return True
        return False

    __contains__ = contains

    # -- iteration ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate all ``(key, value)`` entries in arbitrary order."""
        for bucket in self._buckets:
            yield from bucket

    def keys(self) -> Iterator[Hashable]:
        for key, _ in self.items():
            yield key

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        kind = "unique" if self.unique else "multi"
        return f"HashIndex({kind}, size={self._size}, buckets={len(self._buckets)})"
