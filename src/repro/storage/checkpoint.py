"""Checkpointing: durable snapshots of a chronicle database's state.

The chronicle model's whole point is that the stream is *not* stored —
which makes the persistent views' state the only copy of the summarized
history.  A production deployment therefore needs durability for:

* the group watermarks (so the append rule survives a restart);
* every persistent view's materialized rows **and** its aggregate
  accumulators (finalized values alone cannot resume AVG/VAR state);
* relations (they are ordinary stored data);
* periodic view sets: the clock, expired-interval bookkeeping, and every
  active interval view's rows and accumulators.

The format is a single JSON document (version-tagged).  JSON keeps the
checkpoint inspectable and avoids pickle's code-execution surface; the
value codec (:mod:`repro.storage.codec`, shared with the WAL subsystem)
handles the tuples that aggregate accumulators use.

The public entry points are :func:`write_checkpoint` and
:func:`load_checkpoint` — normally reached through the facade's
``ChronicleDatabase.checkpoint()`` / ``restore()``.  The original free
functions ``checkpoint_database`` / ``restore_database`` remain
importable for one release behind a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Any, Dict, IO, Union

from ..errors import ChronicleError
from ..relational.tuples import Row
from .codec import CodecError
from .codec import decode_value as _decode_value
from .codec import encode_value as _encode_value

FORMAT_VERSION = 1


class CheckpointError(ChronicleError):
    """A checkpoint could not be written or restored."""


def _view_state(view: Any) -> Dict[str, Any]:
    """Extract one persistent view's durable state."""
    return {
        "rows": [_encode_value(row.values) for row in view.relation.rows()],
        "state": [
            [_encode_value(key), _encode_value(value)]
            for key, value in view._state.items()
        ],
        "maintenance_count": view.maintenance_count,
    }


def _restore_view(view: Any, payload: Dict[str, Any]) -> None:
    view.relation.clear()
    view._state.clear()
    for values in payload["rows"]:
        view.relation.insert(Row(view.relation.schema, _decode_value(values)))
    for key, value in payload["state"]:
        view._state.replace(_decode_value(key), _decode_value(value))
    view._maintenance_count = payload.get("maintenance_count", 0)


def _periodic_state(view_set: Any) -> Dict[str, Any]:
    """Durable state of a periodic view set: clock, expiry, interval views."""
    return {
        "clock": view_set._clock,
        "expired": sorted(view_set._expired),
        "instantiated": view_set._instantiated,
        "views": {
            str(index): _view_state(view)
            for index, view in view_set._active.items()
        },
    }


def _restore_periodic(view_set: Any, payload: Dict[str, Any]) -> None:
    view_set._clock = payload.get("clock")
    view_set._expired = set(payload.get("expired", []))
    view_set._instantiated = payload.get("instantiated", 0)
    view_set._active.clear()
    for index_text, view_payload in payload.get("views", {}).items():
        view = view_set._view(int(index_text))
        _restore_view(view, view_payload)
    # _view() bumps the lifetime counter per materialization; restore the
    # checkpointed figure.
    view_set._instantiated = payload.get("instantiated", len(view_set._active))


def checkpoint_document(db: Any) -> Dict[str, Any]:
    """Build (but do not write) the checkpoint document for *db*.

    This is the in-memory form shared by :func:`write_checkpoint` and the
    durability subsystem's watermark-stamped snapshots.
    """
    try:
        return _checkpoint_document(db)
    except CodecError as exc:
        # The shared codec reports the offending value; at this boundary
        # that is a checkpoint failure.
        raise CheckpointError(str(exc)) from exc


def _checkpoint_document(db: Any) -> Dict[str, Any]:
    document: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "groups": {
            name: {"watermark": group.watermark} for name, group in db.groups.items()
        },
        "relations": {
            name: [_encode_value(row.values) for row in relation.rows()]
            for name, relation in db.relations.items()
        },
        "views": {
            view.name: _view_state(view) for view in db.registry.views()
        },
        "periodic": {
            name: _periodic_state(view_set)
            for name, view_set in db.registry._periodic.items()
        },
    }
    # Sharded engine: partitioned views live behind MergedView facades,
    # not in the base registry.  Their durable state is the union of the
    # partitions' fold state (rows regenerate from it on restore), which
    # is exactly the serial engine's state for the same view — so these
    # checkpoints restore into either engine.
    merged = getattr(db, "_merged", None)
    if merged:
        document["merged"] = {}
        for name, view in merged.items():
            items, count = view.export_state()
            document["merged"][name] = {
                "state": [
                    [_encode_value(key), _encode_value(value)]
                    for key, value in items
                ],
                "maintenance_count": count,
            }
    return document


def write_checkpoint(db: Any, target: Union[str, IO[str]]) -> Dict[str, Any]:
    """Write a checkpoint of *db* to a path or text file object.

    Returns the (already-serialized) document for inspection.  Writing to
    a path is atomic (temp file + rename).
    """
    document = checkpoint_document(db)
    if isinstance(target, str):
        directory = os.path.dirname(os.path.abspath(target)) or "."
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(temp_path, target)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
    else:
        json.dump(document, target)
    return document


def load_checkpoint(db: Any, source: Union[str, IO[str], Dict[str, Any]]) -> None:
    """Restore *db* (with schema already re-declared) from a checkpoint.

    The database must have been rebuilt to the same shape — same groups,
    relations, and view definitions — before restoring; the checkpoint
    carries state, not schema.  Group watermarks are advanced so the next
    append continues the sequence-number domain where it left off.
    """
    try:
        _load_checkpoint(db, source)
    except CodecError as exc:
        raise CheckpointError(str(exc)) from exc


def _load_checkpoint(db: Any, source: Union[str, IO[str], Dict[str, Any]]) -> None:
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    elif isinstance(source, dict):
        document = source
    else:
        document = json.load(source)
    if document.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {document.get('format')!r}"
        )
    for name, payload in document["groups"].items():
        if name not in db.groups:
            raise CheckpointError(f"checkpoint names unknown group {name!r}")
        issuer = db.groups[name]._issuer
        if payload["watermark"] > issuer.watermark:
            issuer.accept(payload["watermark"])
    for name, rows in document["relations"].items():
        if name not in db.relations:
            raise CheckpointError(f"checkpoint names unknown relation {name!r}")
        relation = db.relations[name]
        relation.current.clear()
        for values in rows:
            relation.current.insert(
                Row(relation.schema, _decode_value(values))
            )
    known_views = {view.name: view for view in db.registry.views()}
    merged_views = getattr(db, "_merged", None) or {}
    for name, payload in document["views"].items():
        if name in known_views:
            _restore_view(known_views[name], payload)
        elif name in merged_views:
            # A serial checkpoint restoring into a sharded database: the
            # fold state routes to the owning shards; rows regenerate.
            merged_views[name].import_state(
                [
                    (_decode_value(key), _decode_value(value))
                    for key, value in payload["state"]
                ],
                payload.get("maintenance_count", 0),
            )
        else:
            raise CheckpointError(f"checkpoint names unknown view {name!r}")
    for name, payload in document.get("merged", {}).items():
        items = [
            (_decode_value(key), _decode_value(value))
            for key, value in payload["state"]
        ]
        count = payload.get("maintenance_count", 0)
        if name in merged_views:
            merged_views[name].import_state(items, count)
        elif name in known_views:
            # A sharded checkpoint restoring into a serial database.
            known_views[name].state_import(items, maintenance_count=count)
        else:
            raise CheckpointError(f"checkpoint names unknown view {name!r}")
    for name, payload in document.get("periodic", {}).items():
        if name not in db.registry._periodic:
            raise CheckpointError(
                f"checkpoint names unknown periodic view {name!r}"
            )
        _restore_periodic(db.registry._periodic[name], payload)


#: Deprecated spellings kept for one release per the docs/api.md policy.
_DEPRECATED = {
    "checkpoint_database": ("write_checkpoint", write_checkpoint),
    "restore_database": ("load_checkpoint", load_checkpoint),
}


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED:
        replacement, func = _DEPRECATED[name]
        warnings.warn(
            f"repro.storage.checkpoint.{name} is deprecated; use "
            f"ChronicleDatabase.checkpoint()/restore() or "
            f"repro.storage.checkpoint.{replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return func
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
