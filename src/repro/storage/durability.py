"""The durability subsystem: append-ahead logging + snapshot recovery.

The chronicle model's asset is view state — the stream itself is never
stored, so a crash that loses the views would force exactly the
unbounded recompute the model forbids.  :class:`DurabilityManager` makes
restart cheap instead:

* every **admitted batch** is written to the append-ahead log *before*
  maintenance applies it (the ``wal_sink`` hook fires between chronicle
  storage and the maintenance listeners in
  :meth:`~repro.core.group.ChronicleGroup._append_impl`);
* catalog operations (groups, chronicles, relations, view definitions)
  are interleaved in the same ordered log, so a view defined mid-stream
  replays at the right point relative to the data;
* in ``wal+snapshot`` mode, a watermark-stamped checkpoint document
  (the same codec as :mod:`repro.storage.checkpoint`) is written every
  ``snapshot_interval_batches`` batches and the covered log tail is
  truncated — recovery work and disk are both bounded by the interval.

Recovery (:func:`open_database`, reached through
``ChronicleDatabase.open``) rebuilds the catalog from the logged DDL,
loads the latest snapshot, then replays the log tail through the normal
``ingest_stamped`` → ``on_event`` maintenance path — on the sharded
engine, each event is routed and applied only to shards whose watermark
is still behind it.

Known limits (documented in docs/api.md): chronicle retention windows
rebuild only from the replayed tail; rows inserted directly into a
relation (``db.relation(...).insert``) and programmatic periodic views
are durable only through snapshots; a programmatic view whose summary
has no portable plan spec cannot be logged — defining one raises a
:class:`NonDurableWarning` and recovery will not rebuild it.

Periodic-view *clocks* are more durable than their definitions: every
registered :class:`~repro.views.periodic.PeriodicViewSet`'s latest
observed chronon is persisted to the WAL ``meta`` table (cheap upsert,
written only when it moved) so that after ``ChronicleDatabase.open()``
a re-defined programmatic periodic view resumes its cadence — interval
expiry picks up where the crash left it instead of restarting from a
blank clock (:meth:`DurabilityManager.seed_periodic_clock`).
"""

from __future__ import annotations

import os
import threading
import time
import warnings
import weakref
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ChronicleError
from ..obs import runtime as obs_runtime
from ..relational.tuples import Row
from .checkpoint import checkpoint_document
from .wal import ChronicleWal, WalError

__all__ = [
    "DurabilityManager",
    "NonDurableWarning",
    "RecoveryError",
    "RecoveryReport",
    "open_database",
]


class RecoveryError(ChronicleError):
    """Durable state exists but could not be recovered."""


class NonDurableWarning(UserWarning):
    """An operation produced state the durability subsystem cannot log."""


#: ``meta``-table key prefix for persisted periodic-view clocks
#: (``periodic_clock:<view name>`` → latest observed chronon).
_PERIODIC_CLOCK_PREFIX = "periodic_clock:"

#: Thread-local marker set while ``open_database`` constructs a database
#: over existing durable state — the only context in which the manager
#: accepts a non-fresh log.
_OPEN_STATE = threading.local()


def _opening() -> bool:
    return getattr(_OPEN_STATE, "active", False)


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery did: snapshot used + log tail replayed."""

    snapshot_watermark: Optional[int]
    replayed_batches: int
    replayed_ddl: int
    replayed_relation_updates: int
    seconds: float


class _ChronicleMap:
    """Lazy chronicle resolution for rebuilding view plan specs."""

    def __init__(self, db: Any) -> None:
        self._db = db

    def __getitem__(self, name: str) -> Any:
        return self._db.chronicle(name)


def _apply_ddl(db: Any, op: Tuple[Any, ...]) -> None:
    """Re-apply one logged catalog operation during recovery."""
    from ..algebra.plan import build_schema, build_summary

    kind = op[0]
    if kind == "group":
        db.create_group(op[1], start=op[2])
    elif kind == "chronicle":
        _, name, schema, retention, group = op
        db.create_chronicle(
            name, build_schema(schema), retention=retention, group=group
        )
    elif kind == "relation":
        _, name, schema, group, keep_history = op
        db.create_relation(
            name, build_schema(schema), group=group, keep_history=keep_history
        )
    elif kind == "view_text":
        _, name, definition, materialize = op
        db.define_view(definition, name=name, materialize=materialize)
    elif kind == "view_spec":
        _, name, spec, materialize = op
        summary = build_summary(spec, _ChronicleMap(db))
        db.define_view(summary, name=name, materialize=materialize)
    elif kind == "drop_view":
        db.drop_view(op[1])
    else:
        raise RecoveryError(f"unknown catalog operation {kind!r} in log")


class DurabilityManager:
    """Owns one database's append-ahead log, snapshots, and recovery.

    Created by the facade when ``config.durability.mode != "off"``; the
    facade and the chronicle groups call in through narrow hooks
    (``admission_sink``, ``record_ddl``, ``batch_committed``) that are
    never reached when durability is off — the zero-cost idiom of the
    observability layer.
    """

    def __init__(self, db: Any, config: Any) -> None:
        self._db_ref = weakref.ref(db)
        self.config = config
        self.wal = ChronicleWal(config.dir, fsync=config.fsync)
        self.last_recovery: Optional[RecoveryReport] = None
        self._batches_since_snapshot = 0
        #: Clocks loaded from the ``meta`` table during recovery, keyed
        #: by view name — consumed by :meth:`seed_periodic_clock` when a
        #: programmatic periodic view is re-defined after ``open()``.
        self._recovered_clocks: Dict[str, float] = {}
        #: Last clock value written per view — skips the ``meta`` upsert
        #: when nothing moved (the common case between expiries).
        self._logged_clocks: Dict[str, float] = {}
        self._closed = False
        #: False while recovery replays the log — replayed operations
        #: must not be re-logged.
        self._live = True
        if not self.wal.is_fresh() and not _opening():
            self.wal.close()
            raise WalError(
                f"directory {config.dir!r} holds existing durable state; "
                f"open it with ChronicleDatabase.open({config.dir!r}, ...) "
                f"instead of constructing over it"
            )

    def _database(self) -> Any:
        db = self._db_ref()
        if db is None:
            raise WalError("the durable database no longer exists")
        return db

    def _watermark(self) -> int:
        db = self._db_ref()
        if db is None:
            return -1
        return max((g.watermark for g in db.groups.values()), default=-1)

    # -- hot path -------------------------------------------------------------

    def attach_group(self, group: Any) -> None:
        """Point a group's ``wal_sink`` at this manager."""
        group.wal_sink = self.admission_sink

    def admission_sink(self, group: Any, event: Mapping[str, Any], watermark: int) -> None:
        """Log one admitted batch — called *before* maintenance applies it."""
        if self._closed or not self._live:
            return
        payload = {
            name: [row.values for row in rows] for name, rows in event.items()
        }
        obs = obs_runtime.ACTIVE
        if obs is not None:
            started = time.perf_counter()
            size = self.wal.log_batch(group.name, payload, watermark)
            obs.metrics.inc("wal_batches_total", group=group.name)
            obs.metrics.inc("wal_bytes_total", size, group=group.name)
            obs.metrics.observe(
                "wal_append_seconds", time.perf_counter() - started, group=group.name
            )
        else:
            self.wal.log_batch(group.name, payload, watermark)
        self._batches_since_snapshot += 1

    def batch_committed(self) -> None:
        """Facade hook after maintenance finished one batch/window.

        Snapshots run here — never inside the admission path — so the
        checkpoint document always captures fully-maintained view state.
        """
        if self._closed or not self._live:
            return
        self._record_periodic_clocks()
        if (
            self.config.mode == "wal+snapshot"
            and self._batches_since_snapshot >= self.config.snapshot_interval_batches
        ):
            self.snapshot()

    # -- periodic-view clocks ---------------------------------------------------

    def _record_periodic_clocks(self) -> None:
        """Persist moved periodic-view clocks to the ``meta`` table."""
        db = self._db_ref()
        if db is None:
            return
        for name, view_set in db.registry._periodic.items():
            clock = view_set._clock
            if clock is None:
                continue
            clock = float(clock)
            if self._logged_clocks.get(name) == clock:
                continue
            self.wal.set_meta(_PERIODIC_CLOCK_PREFIX + name, repr(clock))
            self._logged_clocks[name] = clock

    def seed_periodic_clock(self, view_set: Any) -> None:
        """Resume a (re-)defined periodic view's cadence from the log.

        Called by the facade whenever a periodic view is registered on a
        durable database: if the ``meta`` table recorded a clock for
        this view name before the crash (or a recovered snapshot/tail
        already advanced it), the later of the two wins, so interval
        expiry continues from where the previous process stopped.
        """
        recovered = self._recovered_clocks.get(view_set.name)
        if recovered is None:
            return
        if view_set._clock is None or recovered > view_set._clock:
            view_set._clock = recovered
            view_set._expire_stale()

    # -- catalog + relation logging -------------------------------------------

    def record_ddl(self, op: Tuple[Any, ...]) -> None:
        if self._closed or not self._live:
            return
        self.wal.log_ddl(op, self._watermark())

    def record_view_definition(
        self, definition: Any, name: Optional[str], materialize: bool
    ) -> None:
        if self._closed or not self._live:
            return
        if isinstance(definition, str):
            self.record_ddl(("view_text", name, definition, materialize))
        else:
            from ..algebra.plan import is_portable, summary_spec

            if not is_portable(definition):
                warnings.warn(
                    f"programmatic view {name!r} has no portable plan spec; "
                    f"recovery will not rebuild it — re-define it after open()",
                    NonDurableWarning,
                    stacklevel=4,
                )
                return
            self.record_ddl(("view_spec", name, summary_spec(definition), materialize))
        # A view defined mid-stream may have materialized from chronicle
        # history the truncated log can no longer rebuild; snapshotting
        # right after the definition captures that state while it is
        # fresh (DDL is rare, so the cost is bounded).  In plain "wal"
        # mode the full log replays from the start, which rebuilds the
        # history exactly — no snapshot needed.
        if self.config.mode == "wal+snapshot":
            self.snapshot()

    def record_relation_update(
        self, name: str, key: Any, changes: Dict[str, Any]
    ) -> None:
        if self._closed or not self._live:
            return
        self.wal.log_relation_update(
            name, tuple(key), dict(changes), self._watermark()
        )

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> int:
        """Write a watermark-stamped snapshot and truncate the log tail."""
        db = self._database()
        obs = obs_runtime.ACTIVE
        span = None
        if obs is not None and obs.trace:
            span = obs.tracer.start("snapshot", path=self.wal.path)
        started = time.perf_counter()
        try:
            document = checkpoint_document(db)
            # Stamped per-shard watermarks: informational for bundle
            # inspection; the authoritative group watermark travels in
            # the document's "groups" section.
            document["watermarks"] = db.watermarks()
            watermark = self._watermark()
            size, truncated = self.wal.write_snapshot(document, watermark)
            self._batches_since_snapshot = 0
        finally:
            if span is not None:
                obs.tracer.finish(span)
        if obs is not None:
            obs.metrics.inc("snapshots_total")
            obs.metrics.set("snapshot_bytes", size)
            obs.metrics.inc("wal_truncated_rows_total", truncated)
            obs.metrics.observe("snapshot_seconds", time.perf_counter() - started)
        return watermark

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Load the latest snapshot and replay the log tail.

        Catalog operations at or below the snapshot's log position are
        applied first (they rebuild the shape the snapshot's state needs),
        then the snapshot document restores watermarks/relations/views,
        then the tail replays in admission order through the engines'
        ``_replay_stamped`` (watermark-aware on both engines).
        """
        db = self._database()
        obs = obs_runtime.ACTIVE
        span = None
        if obs is not None and obs.trace:
            span = obs.tracer.start("recovery", path=self.wal.path)
        started = time.perf_counter()
        self._live = False
        try:
            for key, value in self.wal.meta_items(_PERIODIC_CLOCK_PREFIX):
                name = key[len(_PERIODIC_CLOCK_PREFIX):]
                try:
                    self._recovered_clocks[name] = float(value)
                except ValueError:
                    continue
            snapshot = self.wal.latest_snapshot()
            snapshot_id = snapshot.log_id if snapshot is not None else 0
            replayed_ddl = 0
            for entry in self.wal.ddl_entries(up_to=snapshot_id):
                _apply_ddl(db, entry.payload)
                replayed_ddl += 1
            if snapshot is not None:
                # A snapshot may carry state for a programmatic periodic
                # view no logged DDL rebuilds; restoring would abort on
                # the unknown name.  Drop that state (the documented
                # limit) instead of failing the whole recovery — the
                # view's clock still resumes from the meta table once it
                # is re-defined.
                periodic_state = snapshot.document.get("periodic", {})
                for name in [
                    n for n in periodic_state if n not in db.registry._periodic
                ]:
                    del periodic_state[name]
                    warnings.warn(
                        f"snapshot carries state for periodic view {name!r} "
                        f"which no logged DDL rebuilds; dropping it — "
                        f"re-define the view after open() (its clock "
                        f"resumes from the log's meta table)",
                        NonDurableWarning,
                        stacklevel=2,
                    )
                db.restore(snapshot.document)
            replayed = 0
            relation_updates = 0
            for entry in self.wal.entries(after=snapshot_id):
                if entry.kind == "ddl":
                    _apply_ddl(db, entry.payload)
                    replayed_ddl += 1
                elif entry.kind == "relupdate":
                    name, key, changes = entry.payload
                    db.update_relation(name, key, **changes)
                    relation_updates += 1
                elif entry.kind == "batch":
                    group_name, payload = entry.payload
                    group = db.groups.get(group_name)
                    if group is None:
                        raise RecoveryError(
                            f"log entry {entry.entry_id} names unknown group "
                            f"{group_name!r}"
                        )
                    event = {
                        name: tuple(
                            Row.unchecked(db.chronicle(name).schema, tuple(values))
                            for values in rows
                        )
                        for name, rows in payload.items()
                    }
                    db._replay_stamped(group, event, entry.watermark)
                    replayed += 1
                else:
                    raise RecoveryError(
                        f"unknown log entry kind {entry.kind!r} "
                        f"(entry {entry.entry_id})"
                    )
            # Text-defined periodic views were rebuilt by the DDL replay
            # above; hand each its persisted clock in case the truncated
            # tail no longer reaches the last pre-crash chronon.
            for view_set in db.registry._periodic.values():
                self.seed_periodic_clock(view_set)
            self._logged_clocks = dict(self._recovered_clocks)
            elapsed = time.perf_counter() - started
            self._batches_since_snapshot = replayed
            self.last_recovery = RecoveryReport(
                snapshot_watermark=(
                    snapshot.watermark if snapshot is not None else None
                ),
                replayed_batches=replayed,
                replayed_ddl=replayed_ddl,
                replayed_relation_updates=relation_updates,
                seconds=elapsed,
            )
            if span is not None:
                span.attrs["replayed_batches"] = replayed
                span.attrs["replayed_ddl"] = replayed_ddl
            if obs is not None:
                obs.metrics.inc("recoveries_total")
                obs.metrics.set("recovery_replayed_batches", replayed)
                obs.metrics.observe("recovery_seconds", elapsed)
            return self.last_recovery
        except RecoveryError as exc:
            self._recovery_failed(exc)
            raise
        except Exception as exc:
            self._recovery_failed(exc)
            raise RecoveryError(
                f"recovery from {self.wal.path} failed: {exc}"
            ) from exc
        finally:
            self._live = True
            if span is not None:
                obs.tracer.finish(span)

    def _recovery_failed(self, exc: BaseException) -> None:
        """Incident bundle + metrics on a failed recovery; close the log."""
        obs = obs_runtime.ACTIVE
        if obs is not None:
            obs.metrics.inc("recovery_failures_total")
        db = self._db_ref()
        handle = db._observability if db is not None else None
        if handle is None:
            from ..obs import Observability

            handle = Observability(trace=False, audit="off")
            if db is not None:
                handle.bind_database(db)
        bundle = os.path.join(self.config.dir, "recovery-failure.json")
        try:
            handle.incident(
                "recovery-failure",
                path=bundle,
                error=repr(exc),
                wal=self.wal.path,
            )
        except Exception:
            pass
        self.wal.close()
        self._closed = True

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        """Commit and fsync the log (an explicit durability barrier)."""
        if self._closed:
            return
        if self._live:
            self._record_periodic_clocks()
        obs = obs_runtime.ACTIVE
        span = None
        if obs is not None and obs.trace:
            span = obs.tracer.start("wal_flush", path=self.wal.path)
        started = time.perf_counter()
        try:
            self.wal.flush()
        finally:
            if span is not None:
                obs.tracer.finish(span)
        if obs is not None:
            obs.metrics.observe("wal_flush_seconds", time.perf_counter() - started)

    def close(self) -> None:
        """Finalize the log: final snapshot (if due), fsync, detach, close."""
        if self._closed:
            return
        self._record_periodic_clocks()
        if self.config.mode == "wal+snapshot" and self._batches_since_snapshot:
            self.snapshot()
        self._detach()
        self.wal.close()
        self._closed = True

    def abort(self) -> None:
        """Fault injection: simulate a crash (no snapshot, no finalize)."""
        if self._closed:
            return
        self._detach()
        self.wal.abort()
        self._closed = True

    def _detach(self) -> None:
        db = self._db_ref()
        if db is not None:
            for group in db.groups.values():
                group.wal_sink = None

    @property
    def closed(self) -> bool:
        return self._closed

    def status(self) -> Dict[str, Any]:
        """An inspectable summary (CLI ``SHOW DURABILITY``)."""
        info: Dict[str, Any] = {
            "mode": self.config.mode,
            "dir": self.config.dir,
            "fsync": self.config.fsync,
            "path": self.wal.path,
            "snapshot_interval_batches": self.config.snapshot_interval_batches,
            "closed": self._closed,
            "batches_since_snapshot": self._batches_since_snapshot,
            "last_recovery": (
                asdict(self.last_recovery) if self.last_recovery else None
            ),
        }
        if not self._closed:
            info["log_rows"] = self.wal.log_rows()
        return info


def open_database(config: Any) -> Any:
    """Recover-or-create a durable database (``ChronicleDatabase.open``).

    Constructs the database over the configured durability directory;
    when the directory already holds durable state, recovery runs before
    the database is returned.
    """
    from ..core.database import ChronicleDatabase

    if config.durability.mode == "off":
        raise WalError("open_database requires a durability mode other than 'off'")
    _OPEN_STATE.active = True
    try:
        db = ChronicleDatabase(config=config)
    finally:
        _OPEN_STATE.active = False
    manager = db._durability
    if manager is not None and not manager.wal.is_fresh():
        manager.recover()
    return db
