"""B+-tree with range scans.

The paper's IM-log(R) class charges O(log |R|) per maintained tuple for
locating matching relation/view tuples; a B+-tree is the canonical
structure with that bound, and its probe counts make the logarithm
directly observable in the benchmarks.  This implementation is built from
scratch: order-configurable, leaf-linked for range scans, multi-valued
(several values per key) with an optional unique mode, and instrumented
through the cost model.

Keys may be any mutually-comparable Python values (ints, strings, tuples).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Tuple

from ..complexity.counters import GLOBAL_COUNTERS, CostCounters
from ..errors import KeyViolationError


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[List[Any]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.children: List[Any] = []


class BPlusTree:
    """An in-memory B+-tree index.

    Parameters
    ----------
    order:
        Maximum number of children of an internal node (>= 3).  Leaves
        hold at most ``order - 1`` keys.
    unique:
        When true, inserting an existing key raises
        :class:`~repro.errors.KeyViolationError`.
    counters:
        Cost-model sink; defaults to the process-wide counters.
    """

    __slots__ = ("order", "unique", "_root", "_size", "_counters")

    def __init__(
        self,
        order: int = 32,
        unique: bool = False,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if order < 3:
            raise ValueError("B+-tree order must be at least 3")
        self.order = order
        self.unique = unique
        self._root: Any = _Leaf()
        self._size = 0  # number of (key, value) entries
        self._counters = counters if counters is not None else GLOBAL_COUNTERS

    # -- search helpers ------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        """Descend to the leaf that owns *key*, charging one probe per level."""
        node = self._root
        while isinstance(node, _Internal):
            self._counters.count("index_probe")
            node = node.children[bisect_right(node.keys, key)]
        self._counters.count("index_probe")
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # -- lookup ----------------------------------------------------------------------

    def get(self, key: Any) -> Optional[Any]:
        """First value stored at *key*, or ``None``."""
        self._counters.count("index_lookup")
        leaf = self._find_leaf(key)
        position = bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return leaf.values[position][0]
        return None

    def get_all(self, key: Any) -> List[Any]:
        """Every value stored at *key* (empty list when absent)."""
        self._counters.count("index_lookup")
        leaf = self._find_leaf(key)
        position = bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def contains(self, key: Any) -> bool:
        """Whether any entry exists for *key*."""
        self._counters.count("index_lookup")
        leaf = self._find_leaf(key)
        position = bisect_left(leaf.keys, key)
        return position < len(leaf.keys) and leaf.keys[position] == key

    __contains__ = contains

    def range(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: Tuple[bool, bool] = (True, True),
    ) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs with ``low <= key <= high``.

        Either bound may be ``None`` (unbounded).  *inclusive* controls
        whether each bound is closed.
        """
        self._counters.count("index_lookup")
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            position = 0
        else:
            leaf = self._find_leaf(low)
            position = (
                bisect_left(leaf.keys, low) if inclusive[0] else bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while position < len(leaf.keys):
                key = leaf.keys[position]
                if high is not None:
                    if inclusive[1]:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for value in leaf.values[position]:
                    yield key, value
                position += 1
            leaf = leaf.next
            position = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """All distinct keys in order."""
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def min_key(self) -> Optional[Any]:
        """Smallest key, or ``None`` when empty."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def max_key(self) -> Optional[Any]:
        """Largest key, or ``None`` when empty."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert a ``key → value`` entry."""
        self._counters.count("index_lookup")
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def replace(self, key: Any, value: Any) -> None:
        """Upsert: overwrite the value list at *key* with ``[value]``."""
        self._counters.count("index_lookup")
        leaf = self._find_leaf(key)
        position = bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            self._size -= len(leaf.values[position]) - 1
            leaf.values[position] = [value]
        else:
            # fall back to a normal insert (may split)
            was_unique = self.unique
            self.unique = False
            try:
                self.insert(key, value)
            finally:
                self.unique = was_unique

    def _insert(self, node: Any, key: Any, value: Any) -> Optional[Tuple[Any, Any]]:
        if isinstance(node, _Leaf):
            self._counters.count("index_probe")
            position = bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                if self.unique:
                    raise KeyViolationError(f"duplicate key {key!r} in unique index")
                node.values[position].append(value)
                self._size += 1
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [value])
            self._size += 1
            if len(node.keys) < self.order:
                return None
            return self._split_leaf(node)
        self._counters.count("index_probe")
        child_pos = bisect_right(node.keys, key)
        split = self._insert(node.children[child_pos], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_pos, separator)
        node.children.insert(child_pos + 1, right)
        if len(node.children) <= self.order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # -- deletion --------------------------------------------------------------------

    def remove(self, key: Any, value: Any = None) -> bool:
        """Remove one entry for *key* (a specific *value* when given).

        Returns whether an entry was removed.  Underflowing nodes are
        rebalanced by borrowing from or merging with siblings.
        """
        self._counters.count("index_lookup")
        removed = self._remove(self._root, key, value)
        if removed:
            self._size -= 1
            if isinstance(self._root, _Internal) and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def remove_all(self, key: Any) -> int:
        """Remove every entry for *key*; returns how many were removed."""
        removed = 0
        while self.remove(key):
            removed += 1
        return removed

    def _min_keys(self, node: Any) -> int:
        if node is self._root:
            return 1
        if isinstance(node, _Leaf):
            return (self.order - 1) // 2
        return (self.order + 1) // 2 - 1  # min children - 1

    def _remove(self, node: Any, key: Any, value: Any) -> bool:
        if isinstance(node, _Leaf):
            self._counters.count("index_probe")
            position = bisect_left(node.keys, key)
            if position >= len(node.keys) or node.keys[position] != key:
                return False
            bucket = node.values[position]
            if value is None:
                bucket.pop()
            else:
                try:
                    bucket.remove(value)
                except ValueError:
                    return False
            if not bucket:
                del node.keys[position]
                del node.values[position]
            return True
        self._counters.count("index_probe")
        child_pos = bisect_right(node.keys, key)
        child = node.children[child_pos]
        removed = self._remove(child, key, value)
        if removed:
            self._rebalance(node, child_pos)
        return removed

    def _rebalance(self, parent: _Internal, child_pos: int) -> None:
        child = parent.children[child_pos]
        child_len = len(child.keys) if isinstance(child, _Leaf) else len(child.children) - 1
        if child_len >= self._min_keys(child):
            return
        left = parent.children[child_pos - 1] if child_pos > 0 else None
        right = parent.children[child_pos + 1] if child_pos + 1 < len(parent.children) else None
        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self._min_keys(left):
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[child_pos - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._min_keys(right):
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[child_pos] = right.keys[0] if right.keys else parent.keys[child_pos]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                del parent.children[child_pos]
                del parent.keys[child_pos - 1]
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                del parent.children[child_pos + 1]
                del parent.keys[child_pos]
            return
        # internal child
        if left is not None and len(left.children) - 1 > self._min_keys(left):
            child.keys.insert(0, parent.keys[child_pos - 1])
            parent.keys[child_pos - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        elif right is not None and len(right.children) - 1 > self._min_keys(right):
            child.keys.append(parent.keys[child_pos])
            parent.keys[child_pos] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        elif left is not None:
            left.keys.append(parent.keys[child_pos - 1])
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            del parent.children[child_pos]
            del parent.keys[child_pos - 1]
        elif right is not None:
            child.keys.append(parent.keys[child_pos])
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            del parent.children[child_pos + 1]
            del parent.keys[child_pos]

    # -- misc ------------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry."""
        self._root = _Leaf()
        self._size = 0

    @property
    def depth(self) -> int:
        """Height of the tree (1 = a single leaf)."""
        node, levels = self._root, 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        kind = "unique" if self.unique else "multi"
        return f"BPlusTree(order={self.order}, {kind}, size={self._size}, depth={self.depth})"
