"""Chronicle algebra (Definition 4.1): AST, validation, deltas, oracle."""

from .ast import (
    ChronicleProduct,
    ChronicleScan,
    Difference,
    GroupBySeq,
    Node,
    NonEquiSeqJoin,
    Project,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union,
    scan,
)
from .classify import Classification, IMClass, Language, classify, im_class_of, language_of
from .delta_engine import propagate
from .evaluate import evaluate
from .plan import CompiledPlan, Interner, PlanCompiler, compile_predicate
from .validate import validate_ca, validate_ca1, validate_ca_join

__all__ = [
    "Node",
    "ChronicleScan",
    "Select",
    "Project",
    "SeqJoin",
    "Union",
    "Difference",
    "GroupBySeq",
    "RelProduct",
    "RelKeyJoin",
    "ChronicleProduct",
    "NonEquiSeqJoin",
    "scan",
    "propagate",
    "evaluate",
    "CompiledPlan",
    "Interner",
    "PlanCompiler",
    "compile_predicate",
    "classify",
    "language_of",
    "im_class_of",
    "Classification",
    "Language",
    "IMClass",
    "validate_ca",
    "validate_ca1",
    "validate_ca_join",
]
