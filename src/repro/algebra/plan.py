"""Compiled maintenance plans: multi-query CSE + fused delta pipelines.

The interpreted maintenance path (:mod:`repro.algebra.delta_engine`)
re-dispatches on node type for every operator of every view on every
append, and its per-event delta cache — keyed by node *identity* — only
fires when views happen to share subexpression objects, which never
happens for views compiled independently from text.  This module removes
both costs, in the spirit of classic multi-query optimization [Sellis 86]
and DBToaster-style compiled delta programs [Koch et al. 14]:

1. **Structural interning** (:class:`Interner`) — at registration time,
   algebra trees are rewritten bottom-up so structurally equal subtrees
   become *one shared node object*.  Two views defined independently over
   ``σ_p(scan(calls))`` end up referencing the same ``Select`` node, so a
   per-event cache keyed by node identity now hits across views.

2. **Plan compilation** (:class:`PlanCompiler`) — each view's delta
   propagation is fused into a flat closure pipeline.  Chains of
   select/project collapse into a single compiled function over raw value
   tuples (predicates are precompiled against attribute *positions*, so
   the hot loop never resolves names or allocates intermediate rows), and
   per-node dict dispatch disappears: the plan is a tree of directly
   linked closures.  Nodes shared between plans become explicit cache
   points, evaluated once per append event.

The compiler covers exactly the CA operators with Theorem 4.1 delta
rules; anything else (the Theorem 4.3 extension operators, or operators
added later) falls back to the interpreter via
:func:`~repro.algebra.delta_engine.propagate`, so compiled plans are
always available and never less general.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..complexity.counters import GLOBAL_COUNTERS
from ..core.delta import Delta
from ..errors import AlgebraError
from ..obs import runtime as obs_runtime
from ..relational.predicate import And, Comparison, Not, Or, Predicate, TruePredicate
from ..relational.schema import Attribute, Schema
from ..relational.tuples import Row
from .ast import (
    ChronicleScan,
    Difference,
    GroupBySeq,
    Node,
    Project,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union,
)
from .delta_engine import propagate

#: A compiled delta step: (event deltas, per-event cache) → node delta.
PlanFn = Callable[[Mapping[str, Delta], Dict[int, Delta]], Delta]

#: A compiled predicate over a raw value tuple.
ValuesPredicate = Callable[[Tuple[Any, ...]], bool]


# ---------------------------------------------------------------------------
# Structural keys
# ---------------------------------------------------------------------------


def predicate_key(predicate: Predicate) -> Tuple[Any, ...]:
    """A hashable structural fingerprint of a predicate.

    Two predicates with equal keys accept exactly the same rows, so the
    selections carrying them can be merged by the interner.
    """
    if isinstance(predicate, Comparison):
        rhs = predicate.rhs
        try:
            hash(rhs)
        except TypeError:
            rhs = id(rhs)
        return ("cmp", predicate.attr, predicate.op, rhs, predicate.rhs_is_attr)
    if isinstance(predicate, Or):
        return ("or",) + tuple(predicate_key(t) for t in predicate.terms)
    if isinstance(predicate, And):
        return ("and",) + tuple(predicate_key(t) for t in predicate.terms)
    if isinstance(predicate, Not):
        return ("not", predicate_key(predicate.term))
    if isinstance(predicate, TruePredicate):
        return ("true",)
    # User-defined predicate classes: identity is the only safe equality.
    return ("opaque", id(predicate))


def _aggregate_key(spec: Any) -> Tuple[Any, ...]:
    # The standard aggregates are module-level singletons, so identity of
    # the function object is exactly "same aggregation function".
    return (id(spec.function), spec.attribute, spec.output)


# ---------------------------------------------------------------------------
# Interner
# ---------------------------------------------------------------------------


class Interner:
    """Hash-conses algebra trees so equal subtrees become one object.

    ``intern`` rebuilds a tree bottom-up, looking each node up by its
    structural key; the first tree to exhibit a subexpression donates the
    canonical node, later trees reference it.  Nodes whose structure
    cannot be fingerprinted (extension or user-defined operators) are
    interned by identity — they never merge, but their (interned)
    children still can.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[Any, ...], Node] = {}

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, node: Node) -> Node:
        """The canonical node for *node*'s structure (children interned)."""
        children = tuple(self.intern(child) for child in node.children)
        key = self._key(node, children)
        canonical = self._table.get(key)
        if canonical is None:
            canonical = self._rebuild(node, children)
            self._table[key] = canonical
        return canonical

    @staticmethod
    def _key(node: Node, children: Tuple[Node, ...]) -> Tuple[Any, ...]:
        child_ids = tuple(id(c) for c in children)
        if isinstance(node, ChronicleScan):
            return ("scan", id(node.chronicle))
        if isinstance(node, Select):
            return ("select", predicate_key(node.predicate)) + child_ids
        if isinstance(node, Project):
            return ("project", node.names) + child_ids
        if isinstance(node, Union):
            return ("union",) + child_ids
        if isinstance(node, Difference):
            return ("difference",) + child_ids
        if isinstance(node, SeqJoin):
            return ("seqjoin",) + child_ids
        if isinstance(node, GroupBySeq):
            aggs = tuple(_aggregate_key(a) for a in node.aggregates)
            return ("groupby", node.grouping, aggs) + child_ids
        if isinstance(node, RelProduct):
            return ("relproduct", id(node.relation)) + child_ids
        if isinstance(node, RelKeyJoin):
            return ("relkeyjoin", id(node.relation), node.pairs) + child_ids
        # Extension / unknown operators: intern by identity only.
        return ("opaque", id(node))

    @staticmethod
    def _rebuild(node: Node, children: Tuple[Node, ...]) -> Node:
        if not children or children == node.children:
            return node
        if isinstance(node, Select):
            return Select(children[0], node.predicate)
        if isinstance(node, Project):
            return Project(children[0], node.names)
        if isinstance(node, Union):
            return Union(children[0], children[1])
        if isinstance(node, Difference):
            return Difference(children[0], children[1])
        if isinstance(node, SeqJoin):
            return SeqJoin(children[0], children[1])
        if isinstance(node, GroupBySeq):
            return GroupBySeq(children[0], node.grouping, node.aggregates)
        if isinstance(node, RelProduct):
            return RelProduct(children[0], node.relation)
        if isinstance(node, RelKeyJoin):
            return RelKeyJoin(children[0], node.relation, node.pairs)
        # Unknown operator with interned children: keep the original node
        # (its children keep their identity-based sharing).
        return node


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def compile_predicate(
    predicate: Predicate, schema: Schema, resolve: Optional[Callable[[str], int]] = None
) -> ValuesPredicate:
    """Compile *predicate* into a closure over raw value tuples.

    Attribute references are resolved to positions once, here; the
    returned function does no name lookups.  *resolve* overrides position
    resolution (the fused pipelines use it to map positions through
    intermediate projections back to the base tuple).
    """
    if resolve is None:
        resolve = schema.position
    if isinstance(predicate, Comparison):
        pos = resolve(predicate.attr)
        fn = predicate._fn
        if predicate.rhs_is_attr:
            rpos = resolve(predicate.rhs)

            def attr_cmp(values: Tuple[Any, ...]) -> bool:
                left, right = values[pos], values[rpos]
                if left is None or right is None:
                    return False
                return fn(left, right)

            return attr_cmp
        rhs = predicate.rhs

        def const_cmp(values: Tuple[Any, ...]) -> bool:
            left = values[pos]
            if left is None:
                return False
            return fn(left, rhs)

        return const_cmp
    if isinstance(predicate, Or):
        terms = tuple(compile_predicate(t, schema, resolve) for t in predicate.terms)
        return lambda values: any(t(values) for t in terms)
    if isinstance(predicate, And):
        terms = tuple(compile_predicate(t, schema, resolve) for t in predicate.terms)
        return lambda values: all(t(values) for t in terms)
    if isinstance(predicate, Not):
        term = compile_predicate(predicate.term, schema, resolve)
        return lambda values: not term(values)
    if isinstance(predicate, TruePredicate):
        return lambda values: True
    # User-defined predicates evaluate on rows; wrap for compatibility.
    return lambda values, s=schema, p=predicate: p.evaluate(Row.unchecked(s, values))


def conjoin(tests: List[ValuesPredicate]) -> Optional[ValuesPredicate]:
    """AND together compiled predicates (None for the empty conjunction)."""
    if not tests:
        return None
    if len(tests) == 1:
        return tests[0]
    if len(tests) == 2:
        first, second = tests
        return lambda values: first(values) and second(values)
    fixed = tuple(tests)
    return lambda values: all(t(values) for t in fixed)


def compile_prefilter(
    predicates: Iterable[Predicate], schema: Schema
) -> Callable[[Tuple[Row, ...]], bool]:
    """Compile a registry prefilter: True when *any* row passes any scan's
    conjunction (see :func:`repro.views.registry.scan_prefilters`)."""
    tests = tuple(compile_predicate(p, schema) for p in predicates)
    if len(tests) == 1:
        test = tests[0]
        return lambda rows: any(test(row.values) for row in rows)
    return lambda rows: any(t(row.values) for row in rows for t in tests)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


class CompiledPlan:
    """One view's compiled delta program.

    Calling the plan with the event's base deltas and the per-event cache
    returns the delta of the view's χ expression.  The cache is shared by
    every plan of a registry, so interned nodes referenced by several
    plans are evaluated once per event.

    Every plan also *declares its partition key*: :attr:`partition` is
    either a :class:`PartitionSpec` (the view's maintenance can be
    hash-partitioned by those base attributes, see
    :mod:`repro.parallel`) or the :data:`UNPARTITIONABLE` sentinel.
    """

    __slots__ = ("root", "_fn", "partition")

    def __init__(self, root: Node, fn: PlanFn, partition: Any = None) -> None:
        self.root = root
        self._fn = fn
        self.partition = partition if partition is not None else UNPARTITIONABLE

    def __call__(
        self, deltas: Mapping[str, Delta], cache: Optional[Dict[int, Delta]] = None
    ) -> Delta:
        return self._fn(deltas, cache if cache is not None else {})


class PlanCompiler:
    """Compiles maintenance plans over a shared interner.

    The compiler tracks how many times each interned node is referenced
    across all registered expressions.  A node referenced more than once
    is a *sharing point*: its compiled step is wrapped with a per-event
    cache lookup, and select/project fusion never crosses it (fusing
    through would duplicate work the cache exists to save).  Because
    sharing changes as views come and go, plans are (re)compiled lazily
    by the registry after any registration change — compilation is cheap
    and happens off the append path.
    """

    def __init__(self) -> None:
        self.interner = Interner()
        self._refs: Dict[int, int] = {}

    # -- root bookkeeping -----------------------------------------------------------

    def add_root(self, expression: Node) -> Node:
        """Intern *expression* and count its node references."""
        root = self.interner.intern(expression)
        for node in root.walk():
            self._refs[id(node)] = self._refs.get(id(node), 0) + 1
        return root

    def remove_root(self, root: Node) -> None:
        """Release the references of a previously added (interned) root."""
        for node in root.walk():
            remaining = self._refs.get(id(node), 0) - 1
            if remaining > 0:
                self._refs[id(node)] = remaining
            else:
                self._refs.pop(id(node), None)

    def is_shared(self, node: Node) -> bool:
        """Whether *node* is referenced from more than one place."""
        return self._refs.get(id(node), 0) > 1

    # -- compilation -----------------------------------------------------------------

    def compile(self, root: Node, partition: Any = None) -> CompiledPlan:
        """Compile the (interned) *root* into a flat delta program.

        *partition* is the plan's partition declaration (a
        :class:`PartitionSpec` or :data:`UNPARTITIONABLE`), usually the
        result of :func:`infer_partition` on the view's summary.
        """
        GLOBAL_COUNTERS.count("plan_compile")
        return CompiledPlan(root, self._step(root), partition=partition)

    def _step(self, node: Node) -> PlanFn:
        fn = self._step_inner(node)
        if self.is_shared(node):
            key = id(node)
            inner = fn

            def cached(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
                memo = cache.get(key)
                if memo is not None:
                    GLOBAL_COUNTERS.count("delta_cache_hit")
                    return memo
                result = inner(deltas, cache)
                cache[key] = result
                return result

            fn = cached
        # Observability shim: a ``delta`` span per step when operator
        # tracing is on.  The disabled path is one module-attribute load
        # and an identity test per step call — plans never need to be
        # recompiled to toggle tracing.
        kind = type(node).__name__
        step_fn = fn

        def traced(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            obs = obs_runtime.ACTIVE
            if obs is None or not obs.trace_operators:
                return step_fn(deltas, cache)
            tracer = obs.tracer
            span = tracer.start("delta", operator=kind, engine="compiled")
            try:
                result = step_fn(deltas, cache)
                span.attrs["rows"] = len(result.rows)
                return result
            finally:
                tracer.finish(span)

        return traced

    def _step_inner(self, node: Node) -> PlanFn:
        if isinstance(node, ChronicleScan):
            return self._compile_scan(node)
        if isinstance(node, (Select, Project)):
            return self._compile_pipeline(node)
        if isinstance(node, Union):
            return self._compile_union(node)
        if isinstance(node, Difference):
            return self._compile_difference(node)
        if isinstance(node, SeqJoin):
            return self._compile_seq_join(node)
        if isinstance(node, GroupBySeq):
            return self._compile_group_by(node)
        if isinstance(node, RelProduct):
            return self._compile_rel_product(node)
        if isinstance(node, RelKeyJoin):
            return self._compile_rel_key_join(node)
        # Extension operators (and future node types): interpreter fallback.
        # The per-event cache is id-keyed in both engines, so sharing still
        # works across the boundary.
        return lambda deltas, cache: propagate(node, deltas, cache=cache)

    @staticmethod
    def _compile_scan(node: ChronicleScan) -> PlanFn:
        name = node.chronicle.name
        empty = Delta.empty(node.schema)

        def scan_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            delta = deltas.get(name)
            return delta if delta is not None else empty

        return scan_step

    def _compile_pipeline(self, node: Node) -> PlanFn:
        """Fuse a select/project chain into one compiled loop.

        The chain extends downward through unary select/project nodes
        until it hits a sharing point or a non-unary operator; that child
        becomes the pipeline's input.  Predicates are compiled against
        base-tuple positions by threading projections' position maps, so
        the loop touches only raw value tuples.
        """
        chain: List[Node] = [node]
        cursor = node
        while True:
            child = cursor.children[0]
            if isinstance(child, (Select, Project)) and not self.is_shared(child):
                chain.append(child)
                cursor = child
            else:
                break
        base_fn = self._step(cursor.children[0])
        out_schema = node.schema

        perm: Optional[Tuple[int, ...]] = None  # base positions of current attrs
        tests: List[ValuesPredicate] = []
        for op in reversed(chain):
            child_schema = op.children[0].schema
            if isinstance(op, Select):
                if perm is None:
                    resolve = child_schema.position
                else:
                    mapping = perm

                    def resolve(name: str, s=child_schema, m=mapping) -> int:
                        return m[s.position(name)]

                tests.append(compile_predicate(op.predicate, child_schema, resolve))
            else:
                positions = child_schema.positions(op.names)
                if perm is None:
                    perm = positions
                else:
                    perm = tuple(perm[p] for p in positions)
        test = conjoin(tests)

        if perm is None and test is None:  # degenerate: no chain ops
            return base_fn
        unchecked = Row.unchecked
        count = GLOBAL_COUNTERS.count

        if perm is None:

            def filter_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
                rows = base_fn(deltas, cache).rows
                if not rows:
                    return Delta(out_schema, ())
                count("tuple_op", len(rows))
                return Delta(out_schema, [row for row in rows if test(row.values)])

            return filter_step

        if test is None:
            keep = perm

            def project_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
                rows = base_fn(deltas, cache).rows
                if not rows:
                    return Delta(out_schema, ())
                count("tuple_op", len(rows))
                return Delta(
                    out_schema,
                    [
                        unchecked(out_schema, tuple(row.values[p] for p in keep))
                        for row in rows
                    ],
                )

            return project_step

        keep = perm

        def fused_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            rows = base_fn(deltas, cache).rows
            if not rows:
                return Delta(out_schema, ())
            count("tuple_op", len(rows))
            out = []
            for row in rows:
                values = row.values
                if test(values):
                    out.append(unchecked(out_schema, tuple(values[p] for p in keep)))
            return Delta(out_schema, out)

        return fused_step

    def _compile_union(self, node: Union) -> PlanFn:
        left_fn = self._step(node.children[0])
        right_fn = self._step(node.children[1])
        schema = node.schema
        count = GLOBAL_COUNTERS.count

        def union_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            left = left_fn(deltas, cache).rows
            right = right_fn(deltas, cache).rows
            if left or right:
                count("tuple_op", len(left) + len(right))
            # Union operands are schema-compatible (same names/positions),
            # so rows pass through unrebound; the Delta deduplicates.
            return Delta(schema, left + right)

        return union_step

    def _compile_difference(self, node: Difference) -> PlanFn:
        left_fn = self._step(node.children[0])
        right_fn = self._step(node.children[1])
        schema = node.schema
        count = GLOBAL_COUNTERS.count

        def difference_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            left = left_fn(deltas, cache).rows
            if not left:
                return Delta(schema, ())
            removed = {row.values for row in right_fn(deltas, cache).rows}
            count("tuple_op", len(left))
            if not removed:
                return Delta(schema, left)
            return Delta(schema, [row for row in left if row.values not in removed])

        return difference_step

    def _compile_seq_join(self, node: SeqJoin) -> PlanFn:
        left_fn = self._step(node.children[0])
        right_fn = self._step(node.children[1])
        schema = node.schema
        left_seq = node.left.schema.position(node.left.schema.sequence_attribute)
        right_seq = node.right.schema.position(node.right.schema.sequence_attribute)
        right_positions = node._right_positions
        unchecked = Row.unchecked
        count = GLOBAL_COUNTERS.count

        def seq_join_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            left = left_fn(deltas, cache).rows
            if not left:
                return Delta(schema, ())
            right = right_fn(deltas, cache).rows
            if not right:
                # Cross terms with old tuples are provably empty (fresh
                # sequence numbers never match old ones).
                return Delta(schema, ())
            buckets: Dict[Any, List[Tuple[Any, ...]]] = {}
            for row in right:
                values = row.values
                buckets.setdefault(values[right_seq], []).append(values)
            rows = []
            ops = len(right) + len(left)
            for lrow in left:
                lvalues = lrow.values
                for rvalues in buckets.get(lvalues[left_seq], ()):
                    ops += 1
                    rows.append(
                        unchecked(
                            schema,
                            lvalues + tuple(rvalues[p] for p in right_positions),
                        )
                    )
            count("tuple_op", ops)
            return Delta(schema, rows)

        return seq_join_step

    def _compile_group_by(self, node: GroupBySeq) -> PlanFn:
        child_fn = self._step(node.children[0])
        schema = node.schema
        positions = node.child.schema.positions(node.grouping)
        specs = node.aggregates
        initials = tuple(a.function.initial for a in specs)
        steps = tuple(a.function.step for a in specs)
        finalizers = tuple(a.function.finalize for a in specs)
        arg_positions = tuple(
            node.child.schema.position(a.attribute) if a.attribute is not None else None
            for a in specs
        )
        unchecked = Row.unchecked
        count = GLOBAL_COUNTERS.count

        def group_by_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            child = child_fn(deltas, cache).rows
            if not child:
                return Delta(schema, ())
            states: Dict[Tuple[Any, ...], List[Any]] = {}
            order: List[Tuple[Any, ...]] = []
            for row in child:
                values = row.values
                key = tuple(values[p] for p in positions)
                accumulators = states.get(key)
                if accumulators is None:
                    accumulators = [initial() for initial in initials]
                    states[key] = accumulators
                    order.append(key)
                for i, step in enumerate(steps):
                    pos = arg_positions[i]
                    accumulators[i] = step(
                        accumulators[i], 1 if pos is None else values[pos]
                    )
            count("tuple_op", len(child))
            count("aggregate_step", len(child) * len(specs))
            rows = []
            for key in order:
                finals = tuple(
                    finalize(state)
                    for finalize, state in zip(finalizers, states[key])
                )
                rows.append(unchecked(schema, key + finals))
            return Delta(schema, rows)

        return group_by_step

    def _compile_rel_product(self, node: RelProduct) -> PlanFn:
        child_fn = self._step(node.children[0])
        schema = node.schema
        relation = node.relation
        unchecked = Row.unchecked
        count = GLOBAL_COUNTERS.count

        def rel_product_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            child = child_fn(deltas, cache).rows
            if not child:
                return Delta(schema, ())
            # Proactive updates guarantee the current version of R is the
            # right one for fresh sequence numbers.
            current = [row.values for row in relation.rows()]
            rows = []
            for crow in child:
                cvalues = crow.values
                for rvalues in current:
                    rows.append(unchecked(schema, cvalues + rvalues))
            count("tuple_op", len(child) * len(current))
            return Delta(schema, rows)

        return rel_product_step

    def _compile_rel_key_join(self, node: RelKeyJoin) -> PlanFn:
        child_fn = self._step(node.children[0])
        schema = node.schema
        relation = node.relation
        relation_attrs = node.relation_attrs
        child_positions = node._child_positions
        kept_positions = node._kept_positions
        single = len(child_positions) == 1
        unchecked = Row.unchecked
        count = GLOBAL_COUNTERS.count

        def rel_key_join_step(deltas: Mapping[str, Delta], cache: Dict[int, Delta]) -> Delta:
            child = child_fn(deltas, cache).rows
            if not child:
                return Delta(schema, ())
            rows = []
            ops = len(child)
            lookup = relation.lookup
            for crow in child:
                cvalues = crow.values
                if single:
                    key = cvalues[child_positions[0]]
                else:
                    key = tuple(cvalues[p] for p in child_positions)
                for rrow in lookup(relation_attrs, key):
                    ops += 1
                    rows.append(
                        unchecked(
                            schema,
                            cvalues + tuple(rrow.values[p] for p in kept_positions),
                        )
                    )
            count("tuple_op", ops)
            return Delta(schema, rows)

        return rel_key_join_step


# ---------------------------------------------------------------------------
# Plan description (EXPLAIN)
# ---------------------------------------------------------------------------


class PlanNode:
    """One node of a described plan tree (what ``EXPLAIN`` renders).

    Mirrors the *compiled* shape, not the raw expression tree: a fused
    select/project chain collapses into its chain head exactly as
    :meth:`PlanCompiler._compile_pipeline` fuses it, so described nodes
    correspond one-to-one with the ``delta`` spans the compiled plan
    emits (and with :class:`~repro.obs.costmodel.CostLedger` shapes).
    """

    __slots__ = ("kind", "detail", "fused", "shared", "refs", "children")

    def __init__(
        self,
        kind: str,
        detail: str = "",
        fused: Optional[List[str]] = None,
        shared: bool = False,
        refs: int = 1,
        children: Optional[List["PlanNode"]] = None,
    ) -> None:
        self.kind = kind
        self.detail = detail
        #: Descriptions of chain operators fused *into* this step
        #: (beyond the head itself); empty for non-pipeline nodes.
        self.fused = fused or []
        #: Whether this step is a sharing point (wrapped with the
        #: per-event delta cache).
        self.shared = shared
        self.refs = refs
        self.children = children or []

    def walk(self) -> Iterable["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.detail:
            out["detail"] = self.detail
        if self.fused:
            out["fused"] = list(self.fused)
        if self.shared:
            out["shared"] = True
            out["refs"] = self.refs
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


def _describe_op(node: Node) -> str:
    """A one-line operator description for EXPLAIN output."""
    if isinstance(node, ChronicleScan):
        return f"scan {node.chronicle.name}"
    if isinstance(node, Select):
        return f"σ {node.predicate!r}"
    if isinstance(node, Project):
        return "π [" + ", ".join(node.names) + "]"
    if isinstance(node, GroupBySeq):
        aggs = ", ".join(
            f"{spec.function.name.upper()}({spec.attribute or '*'}) AS {spec.output}"
            for spec in node.aggregates
        )
        return f"group by ({', '.join(node.grouping)}); {aggs}"
    if isinstance(node, RelProduct):
        return f"× relation {node.relation.name}"
    if isinstance(node, RelKeyJoin):
        pairs = ", ".join(f"{c}={r}" for c, r in node.pairs)
        return f"⋈ relation {node.relation.name} on ({pairs})"
    return ""


def describe_plan(root: Node, compiler: Optional[PlanCompiler] = None) -> PlanNode:
    """Describe the plan the compiler would build for *root*.

    With a *compiler* (the registry's, holding the interner refcounts),
    the description mirrors compiled structure: select/project chains
    fuse into their head node, and sharing points carry their reference
    counts.  Without one — the interpreted engine — every expression
    node maps to its own described node (which matches the interpreter's
    one-``delta``-span-per-node behaviour).
    """
    kind = type(root).__name__
    shared = compiler.is_shared(root) if compiler is not None else False
    refs = compiler._refs.get(id(root), 1) if compiler is not None else 1

    if compiler is not None and isinstance(root, (Select, Project)):
        # Mirror _compile_pipeline's chain walk exactly.
        chain: List[Node] = [root]
        cursor: Node = root
        while True:
            child = cursor.children[0]
            if isinstance(child, (Select, Project)) and not compiler.is_shared(child):
                chain.append(child)
                cursor = child
            else:
                break
        return PlanNode(
            kind,
            detail=_describe_op(root),
            fused=[_describe_op(op) for op in chain[1:]],
            shared=shared,
            refs=refs,
            children=[describe_plan(cursor.children[0], compiler)],
        )

    return PlanNode(
        kind,
        detail=_describe_op(root),
        shared=shared,
        refs=refs,
        children=[describe_plan(child, compiler) for child in root.children],
    )


# ---------------------------------------------------------------------------
# Partition-key inference
# ---------------------------------------------------------------------------
#
# The sharded engine (:mod:`repro.parallel`) hash-partitions incoming
# records by each view's summary key and maintains each partition
# independently.  That is sound exactly when *every* record that can
# contribute to a given view key lands in the same shard.  The analysis
# below decides this by tracing the copy-lineage of the summary-key
# attributes through the view's χ expression down to base-chronicle
# attributes: because CA's reshaping operators only *copy* values (no
# arithmetic), a key attribute that traces to one base attribute in every
# scanned chronicle yields a routing rule "hash that base attribute".
#
# Views whose keys straddle partitions declare UNPARTITIONABLE and fall
# back to the serial shard:
#
# * global aggregates (empty grouping) — one cross-key accumulator;
# * keys derived from aggregate outputs or relation-side attributes —
#   no base-chronicle lineage;
# * expressions containing SeqJoin / the extension operators — an output
#   row derives from *several* chronicle rows matched by sequence
#   number, which routing by value cannot co-locate.
#
# Union is partitionable (each output row derives from one input row);
# so is Difference (cancellation requires *identical* tuples, and
# identical tuples hash identically, so per-shard difference equals the
# global difference restricted to the shard).


class _Unpartitionable:
    """Sentinel: the view's maintenance cannot be hash-partitioned."""

    _instance: Optional["_Unpartitionable"] = None

    def __new__(cls) -> "_Unpartitionable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNPARTITIONABLE"

    def __bool__(self) -> bool:
        return False


#: The partition declaration of views that must run on the serial shard.
UNPARTITIONABLE = _Unpartitionable()


class PartitionSpec:
    """A view's routing rule: chronicle name → base routing attributes.

    ``keys[chronicle]`` lists, *in summary-key order*, the base attribute
    of that chronicle whose value each summary-key attribute copies.  Two
    records with equal routing-attribute values always contribute to the
    same view keys, so hashing the routing tuple assigns every record to
    the shard that owns all view state it can touch — and a summary-key
    lookup hashes the key itself to find that shard.
    """

    __slots__ = ("keys",)

    def __init__(self, keys: Mapping[str, Tuple[str, ...]]) -> None:
        self.keys: Dict[str, Tuple[str, ...]] = dict(keys)

    @property
    def chronicles(self) -> Tuple[str, ...]:
        return tuple(sorted(self.keys))

    def canonical(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """A hashable identity: equal specs can share shard state."""
        return tuple(sorted(self.keys.items()))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartitionSpec) and self.keys == other.keys

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        inner = ", ".join(f"{c}: {list(a)}" for c, a in sorted(self.keys.items()))
        return f"PartitionSpec({inner})"


#: attr name -> {chronicle name -> base attr};  None = poisoned subtree.
_Lineage = Optional[Dict[str, Dict[str, str]]]


def _attribute_lineage(node: Node) -> _Lineage:
    """Copy-lineage of *node*'s output attributes to base-chronicle attrs.

    Returns ``None`` when the subtree contains an operator whose output
    rows derive from several chronicle rows (SeqJoin, the extension
    operators, or any operator this analysis does not know) — such trees
    are unpartitionable outright.  An attribute mapped to an empty dict
    has no chronicle lineage (aggregate outputs, relation attributes).
    """
    if isinstance(node, ChronicleScan):
        name = node.chronicle.name
        return {attr: {name: attr} for attr in node.schema.names}
    if isinstance(node, Select):
        return _attribute_lineage(node.child)
    if isinstance(node, Project):
        child = _attribute_lineage(node.child)
        if child is None:
            return None
        return {name: child[name] for name in node.names}
    if isinstance(node, (Union, Difference)):
        left = _attribute_lineage(node.left)
        right = _attribute_lineage(node.right)
        if left is None or right is None:
            return None
        merged: Dict[str, Dict[str, str]] = {}
        for attr in node.schema.names:
            sources = dict(left.get(attr, {}))
            for chronicle, base in right.get(attr, {}).items():
                if sources.get(chronicle, base) != base:
                    # The two branches copy the attribute from different
                    # base columns of the same chronicle: no single
                    # routing attribute serves both. Dropping the entry
                    # makes the resolution check below fail for it.
                    sources.pop(chronicle, None)
                else:
                    sources[chronicle] = base
            merged[attr] = sources
        return merged
    if isinstance(node, GroupBySeq):
        child = _attribute_lineage(node.child)
        if child is None:
            return None
        lineage = {name: child[name] for name in node.grouping}
        for spec in node.aggregates:
            lineage[spec.output] = {}
        return lineage
    if isinstance(node, (RelProduct, RelKeyJoin)):
        # The relation side is replicated read-only across shards, so
        # chronicle-attribute lineage passes through; relation-sourced
        # output attributes carry no chronicle lineage.
        child = _attribute_lineage(node.child)
        if child is None:
            return None
        return {name: child.get(name, {}) for name in node.schema.names}
    # SeqJoin, ChronicleProduct, NonEquiSeqJoin, unknown operators: an
    # output row combines several chronicle rows matched by sequence
    # number — value-routing cannot co-locate the match partners.
    return None


def infer_partition(summary: Any) -> Any:
    """Infer a view's partition declaration from its summary.

    Returns a :class:`PartitionSpec` when maintenance can be
    hash-partitioned by the summary key, else :data:`UNPARTITIONABLE`.
    *summary* is a :class:`~repro.sca.summarize.Summary` (grouping or
    projection).
    """
    grouping = getattr(summary, "grouping", None)
    if grouping is not None:
        if not grouping:
            return UNPARTITIONABLE  # global aggregate: one cross-key state
        keys = tuple(grouping)
    else:
        keys = tuple(getattr(summary, "names", ()))
        if not keys:
            return UNPARTITIONABLE
    expression = summary.expression
    lineage = _attribute_lineage(expression)
    if lineage is None:
        return UNPARTITIONABLE
    chronicle_names = {c.name for c in expression.chronicles()}
    if not chronicle_names:
        return UNPARTITIONABLE
    spec: Dict[str, Tuple[str, ...]] = {}
    for chronicle in chronicle_names:
        routing = []
        for key in keys:
            base = lineage.get(key, {}).get(chronicle)
            if base is None:
                return UNPARTITIONABLE
            routing.append(base)
        spec[chronicle] = tuple(routing)
    return PartitionSpec(spec)


# ---------------------------------------------------------------------------
# Portable plan specs
# ---------------------------------------------------------------------------
#
# The process executor (:mod:`repro.parallel.worker`) rebuilds each
# shard's maintenance machinery inside a worker process.  Live algebra
# trees cannot cross that boundary: a ChronicleScan holds the chronicle,
# which holds the group, which holds its listeners — pickling one node
# would drag the whole database (locks, thread pools, registries) along.
# Schemas are identity-sensitive too: Domain objects compare by ``is``,
# so a pickled copy of INT would no longer *be* INT.
#
# A *plan spec* is the neutral encoding that avoids both traps: nested
# tuples of plain values, with chronicle scans recorded **by name** and
# domains **by domain name**.  ``build_*`` reconstructs the live objects
# over a caller-supplied chronicle mapping (the worker's mirrors), going
# through the ordinary constructors so every structural invariant is
# re-validated on arrival.  Predicates and the standard aggregate
# singletons are carried as objects — they are plain data and pickle
# cleanly; anything that does not (lambdas in user-defined aggregates,
# live relations) makes the view non-portable, which
# ``summary_spec`` reports by raising :class:`~repro.errors.AlgebraError`.


def schema_spec(schema: Schema) -> Tuple[Any, ...]:
    """A picklable, identity-free encoding of a schema."""
    return (
        tuple((a.name, a.domain.name, a.nullable) for a in schema.attributes),
        schema.key,
        schema.sequence_attribute,
    )


def build_schema(spec: Tuple[Any, ...]) -> Schema:
    """Rebuild a schema from :func:`schema_spec` (domains by name)."""
    attrs, key, sequence_attribute = spec
    return Schema(
        [Attribute(name, domain, nullable) for name, domain, nullable in attrs],
        key=key,
        sequence_attribute=sequence_attribute,
    )


def node_spec(node: Node) -> Tuple[Any, ...]:
    """A picklable encoding of a chronicle-algebra tree (scans by name).

    Covers exactly the operators whose delta rules are process-portable.
    Relation-backed operators (``RelProduct``/``RelKeyJoin``) reference a
    live, proactively-updated relation object that only exists in the
    admission process — there is no sound way to replicate it into a
    worker mid-stream — and the extension operators need chronicle
    history a worker does not store; both raise
    :class:`~repro.errors.AlgebraError` (callers fall back to the serial
    shard).
    """
    if isinstance(node, ChronicleScan):
        return ("scan", node.chronicle.name)
    if isinstance(node, Select):
        return ("select", node_spec(node.child), node.predicate)
    if isinstance(node, Project):
        return ("project", node_spec(node.child), node.names)
    if isinstance(node, SeqJoin):
        return ("seqjoin", node_spec(node.left), node_spec(node.right))
    if isinstance(node, Union):
        return ("union", node_spec(node.left), node_spec(node.right))
    if isinstance(node, Difference):
        return ("difference", node_spec(node.left), node_spec(node.right))
    if isinstance(node, GroupBySeq):
        return ("groupby_sn", node_spec(node.child), node.grouping, node.aggregates)
    raise AlgebraError(
        f"{type(node).__name__} has no portable plan spec (it references "
        f"process-local state); views containing it stay on the serial shard "
        f"under the process executor"
    )


def build_node(spec: Tuple[Any, ...], chronicles: Mapping[str, Any]) -> Node:
    """Rebuild an algebra tree from :func:`node_spec` over *chronicles*."""
    kind = spec[0]
    if kind == "scan":
        return ChronicleScan(chronicles[spec[1]])
    if kind == "select":
        return Select(build_node(spec[1], chronicles), spec[2])
    if kind == "project":
        return Project(build_node(spec[1], chronicles), spec[2])
    if kind == "seqjoin":
        return SeqJoin(build_node(spec[1], chronicles), build_node(spec[2], chronicles))
    if kind == "union":
        return Union(build_node(spec[1], chronicles), build_node(spec[2], chronicles))
    if kind == "difference":
        return Difference(
            build_node(spec[1], chronicles), build_node(spec[2], chronicles)
        )
    if kind == "groupby_sn":
        return GroupBySeq(build_node(spec[1], chronicles), spec[2], spec[3])
    raise AlgebraError(f"unknown plan-spec node kind {kind!r}")


def summary_spec(summary: Any) -> Tuple[Any, ...]:
    """A picklable encoding of a view definition (summary over χ).

    Raises :class:`~repro.errors.AlgebraError` for summaries that cannot
    cross a process boundary; :func:`is_portable` wraps this as a probe.
    """
    from ..sca.summarize import GroupBySummary, ProjectSummary

    if isinstance(summary, GroupBySummary):
        return (
            "groupby",
            node_spec(summary.expression),
            summary.grouping,
            summary.aggregates,
            summary.having,
        )
    if isinstance(summary, ProjectSummary):
        return ("projection", node_spec(summary.expression), summary.names)
    raise AlgebraError(
        f"summary type {type(summary).__name__} has no portable plan spec"
    )


def build_summary(spec: Tuple[Any, ...], chronicles: Mapping[str, Any]) -> Any:
    """Rebuild a summary from :func:`summary_spec` over *chronicles*."""
    from ..sca.summarize import GroupBySummary, ProjectSummary

    kind = spec[0]
    if kind == "groupby":
        return GroupBySummary(
            build_node(spec[1], chronicles), spec[2], spec[3], having=spec[4]
        )
    if kind == "projection":
        return ProjectSummary(build_node(spec[1], chronicles), spec[2])
    raise AlgebraError(f"unknown plan-spec summary kind {kind!r}")


def is_portable(summary: Any) -> bool:
    """Whether a view definition can be shipped to a worker process.

    True when the summary has a plan spec **and** that spec pickles —
    the spec carries predicates and aggregate functions as objects, so a
    user-defined aggregate closed over a lambda is caught here, not at
    dispatch time.
    """
    import pickle

    try:
        payload = summary_spec(summary)
        pickle.dumps(payload)
    except Exception:
        return False
    return True
