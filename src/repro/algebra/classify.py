"""Language classification and incremental-complexity accounting.

Given an operator tree, :func:`classify` determines the smallest language
fragment containing it — CA1 ⊂ CA⋈ ⊂ CA, or NOT_CA for expressions using
the extension operators — and counts the parameters of the Theorem 4.2
complexity formulas:

* ``u`` — number of union operators;
* ``j`` — number of equijoins and chronicle-relation products/joins;
* ``max_relation_size`` — |R| for the formulas' relation factor.

The summarization step then maps fragments to the incremental maintenance
classes of Section 3 (Theorem 4.5):

====================  =================
fragment (of χ)        IM class of SCA-χ
====================  =================
CA1                    IM-Constant
CA⋈                    IM-log(R)
CA                     IM-R^k
NOT_CA                 IM-C^k
====================  =================
"""

from __future__ import annotations

import enum

from .ast import (
    ChronicleProduct,
    Node,
    NonEquiSeqJoin,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union as UnionNode,
)
from .validate import predicate_in_ca_fragment


class Language(enum.Enum):
    """Chronicle-algebra fragments, ordered by containment."""

    CA1 = "CA1"
    CA_JOIN = "CA-join"
    CA = "CA"
    NOT_CA = "not-CA"

    def __le__(self, other: "Language") -> bool:
        order = [Language.CA1, Language.CA_JOIN, Language.CA, Language.NOT_CA]
        return order.index(self) <= order.index(other)


class IMClass(enum.Enum):
    """Incremental maintenance complexity classes (Section 3)."""

    CONSTANT = "IM-Constant"
    LOG_R = "IM-log(R)"
    POLY_R = "IM-R^k"
    POLY_C = "IM-C^k"

    def __le__(self, other: "IMClass") -> bool:
        order = [IMClass.CONSTANT, IMClass.LOG_R, IMClass.POLY_R, IMClass.POLY_C]
        return order.index(self) <= order.index(other)


#: Theorem 4.5 mapping from fragment of χ to IM class of the SCA view.
IM_CLASS_OF = {
    Language.CA1: IMClass.CONSTANT,
    Language.CA_JOIN: IMClass.LOG_R,
    Language.CA: IMClass.POLY_R,
    Language.NOT_CA: IMClass.POLY_C,
}


class Classification:
    """The result of :func:`classify`.

    Attributes
    ----------
    language:
        Smallest fragment containing the expression.
    im_class:
        IM class of a summarized view over the expression (Theorem 4.5).
    unions, joins:
        The u and j of the Theorem 4.2 formulas.
    max_relation_size:
        Largest referenced relation (0 when none), the formulas' |R|.
    """

    __slots__ = ("language", "unions", "joins", "max_relation_size")

    def __init__(self, language: Language, unions: int, joins: int,
                 max_relation_size: int) -> None:
        self.language = language
        self.unions = unions
        self.joins = joins
        self.max_relation_size = max_relation_size

    @property
    def im_class(self) -> IMClass:
        return IM_CLASS_OF[self.language]

    def delta_size_bound(self) -> float:
        """Theorem 4.2's space bound on the delta of the expression.

        O((u |R|)^j) for CA, O(u^j) for CA⋈/CA1 — evaluated with u and
        |R| floored at 1 so the bound is meaningful for small expressions.
        """
        u = max(self.unions + 1, 1)
        j = self.joins
        if self.language is Language.CA:
            r = max(self.max_relation_size, 1)
            return float((u * r) ** j) if j else float(u)
        return float(u ** j) if j else float(u)

    def __repr__(self) -> str:
        return (
            f"Classification({self.language.value}, u={self.unions}, "
            f"j={self.joins}, |R|={self.max_relation_size}, "
            f"im={self.im_class.value})"
        )


def classify(node: Node) -> Classification:
    """Classify an operator tree into its smallest language fragment."""
    language = Language.CA1
    unions = 0
    joins = 0
    max_relation = 0
    for sub in node.walk():
        if isinstance(sub, (ChronicleProduct, NonEquiSeqJoin)):
            language = Language.NOT_CA
            joins += 1
        elif isinstance(sub, RelProduct):
            if language is not Language.NOT_CA:
                language = Language.CA
            joins += 1
            max_relation = max(max_relation, len(sub.relation))
        elif isinstance(sub, RelKeyJoin):
            if language is Language.CA1:
                language = Language.CA_JOIN
            joins += 1
            max_relation = max(max_relation, len(sub.relation))
        elif isinstance(sub, SeqJoin):
            joins += 1
        elif isinstance(sub, UnionNode):
            unions += 1
        elif isinstance(sub, Select):
            if language is not Language.NOT_CA and not predicate_in_ca_fragment(sub.predicate):
                language = Language.NOT_CA
    return Classification(language, unions, joins, max_relation)


def language_of(node: Node) -> Language:
    """Shorthand: just the fragment of :func:`classify`."""
    return classify(node).language


def im_class_of(node: Node) -> IMClass:
    """IM class of a summarized view over *node* (Theorem 4.5)."""
    return classify(node).im_class
