"""Structural validation of chronicle-algebra expressions.

Most of Definition 4.1's rules are enforced at node construction time
(see :mod:`repro.algebra.ast`).  This module adds the whole-expression
checks:

* the selection-predicate fragment (``A θ B`` / ``A θ k`` and
  disjunctions thereof — conjunctions are accepted as sugar for cascaded
  selections, anything else is rejected);
* absence of the extension operators (chronicle×chronicle products,
  non-equijoins) from CA expressions;
* per-fragment restrictions (no relation operators in CA1; only
  key-guaranteed joins in CA⋈).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import LanguageViolationError
from ..relational.predicate import And, Comparison, Or, Predicate, TruePredicate
from .ast import (
    ChronicleProduct,
    Node,
    NonEquiSeqJoin,
    RelKeyJoin,
    RelProduct,
    Select,
)


def predicate_in_ca_fragment(predicate: Predicate) -> bool:
    """Whether *predicate* is admissible in a CA selection.

    The Definition 4.1 fragment is atomic comparisons and disjunctions of
    them.  A top-level conjunction of admissible predicates is accepted
    as syntactic sugar for a cascade of selections.
    """
    if isinstance(predicate, (Comparison, TruePredicate)):
        return True
    if isinstance(predicate, Or):
        return all(isinstance(term, Comparison) for term in predicate.terms)
    if isinstance(predicate, And):
        return all(predicate_in_ca_fragment(term) for term in predicate.terms)
    return False


def _extension_nodes(node: Node) -> Iterable[Node]:
    for sub in node.walk():
        if isinstance(sub, (ChronicleProduct, NonEquiSeqJoin)):
            yield sub


def validate_ca(node: Node) -> None:
    """Raise unless *node* is a chronicle-algebra (CA) expression."""
    for sub in _extension_nodes(node):
        raise LanguageViolationError(
            f"{type(sub).__name__} is outside chronicle algebra: maintaining "
            f"it requires access to stored chronicle history (Theorem 4.3)"
        )
    for sub in node.walk():
        if isinstance(sub, Select) and not predicate_in_ca_fragment(sub.predicate):
            raise LanguageViolationError(
                f"selection predicate {sub.predicate!r} is outside the "
                f"Definition 4.1 fragment (comparisons and disjunctions)"
            )


def validate_ca_join(node: Node) -> None:
    """Raise unless *node* is a CA⋈ expression (Definition 4.2).

    CA⋈ replaces the relation cross product with the key-guaranteed
    join; RelKeyJoin constructors already verified the guarantee.
    """
    validate_ca(node)
    for sub in node.walk():
        if isinstance(sub, RelProduct):
            raise LanguageViolationError(
                "CA-join replaces the chronicle-relation cross product with a "
                "key-guaranteed join; use keyjoin() instead of product()"
            )


def validate_ca1(node: Node) -> None:
    """Raise unless *node* is a CA1 expression (no relation operators)."""
    validate_ca(node)
    for sub in node.walk():
        if isinstance(sub, (RelProduct, RelKeyJoin)):
            raise LanguageViolationError(
                "CA1 excludes every chronicle-relation operator "
                "(Definition 4.2)"
            )
