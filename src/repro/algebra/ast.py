"""Chronicle algebra operator trees (Definition 4.1).

Each node knows its output :class:`~repro.relational.schema.Schema`
(computed and validated at construction), its operand children, and the
referenced chronicles/relations.  The structural rules of the paper are
enforced eagerly:

* every chronicle-algebra expression *is a chronicle*: its schema retains
  the sequencing attribute (Lemma 4.1) — violating constructions raise
  :class:`~repro.errors.NotAChronicleError` (Theorem 4.3(1));
* binary chronicle operators require operands from the same chronicle
  group (Section 4);
* the CA-join operator requires the key-join guarantee of Definition 4.2.

Two *extension* operators — :class:`ChronicleProduct` and
:class:`NonEquiSeqJoin` — deliberately step outside CA.  They exist so the
maximality result (Theorem 4.3(2)) can be demonstrated empirically: their
maintenance provably needs access to stored chronicle history, and the
benchmarks show their per-append cost growing with |C|.

Construction is fluent: every node carries ``select/project/join/union/
minus/groupby_sn/product/keyjoin`` methods returning new nodes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence, Tuple

from ..aggregates.base import AggregateSpec
from ..core.chronicle import Chronicle
from ..errors import (
    AlgebraError,
    ChronicleGroupError,
    KeyJoinGuaranteeError,
    NotAChronicleError,
    SchemaError,
)
from ..relational.predicate import Predicate
from ..relational.schema import Attribute, Schema
from ..relational.tuples import Row


def aggregate_attribute(input_schema: Schema, spec: AggregateSpec) -> Attribute:
    """The result attribute for one aggregation-list entry.

    The domain follows the aggregate's ``output_domain`` (COUNT → INT,
    AVG → FLOAT, MIN/MAX/SUM → the input attribute's domain); results are
    nullable because some aggregates are undefined on empty groups.
    """
    input_domain = (
        input_schema.attribute(spec.attribute).domain
        if spec.attribute is not None
        else None
    )
    return Attribute(spec.output, spec.function.output_domain(input_domain), nullable=True)


class Node:
    """Base class of chronicle-algebra operator nodes."""

    #: Output schema; always a chronicle schema for CA nodes.
    schema: Schema
    #: Operand nodes (empty for leaves).
    children: Tuple["Node", ...] = ()

    # -- tree queries ---------------------------------------------------------------

    def chronicles(self) -> List[Chronicle]:
        """Every base chronicle referenced, in leaf order (with repeats)."""
        found: List[Chronicle] = []
        for node in self.walk():
            if isinstance(node, ChronicleScan):
                found.append(node.chronicle)
        return found

    def relations(self) -> List[Any]:
        """Every relation referenced, in tree order (with repeats)."""
        found: List[Any] = []
        for node in self.walk():
            if isinstance(node, (RelProduct, RelKeyJoin)):
                found.append(node.relation)
        return found

    def walk(self) -> Iterator["Node"]:
        """Depth-first pre-order iteration over the tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def group(self):
        """The chronicle group the expression's result belongs to.

        Lemma 4.1: a CA expression is a chronicle in the same group as
        its operands.
        """
        for chronicle in self.chronicles():
            return chronicle.group
        return None

    def _require_same_group(self, other: "Node", operation: str) -> None:
        left, right = self.group, other.group
        if left is not None and right is not None and left is not right:
            raise ChronicleGroupError(
                f"{operation} requires operands from the same chronicle group; "
                f"got {left.name!r} and {right.name!r}"
            )

    # -- fluent construction -----------------------------------------------------------

    def select(self, predicate: Predicate) -> "Select":
        """σ_p over this expression."""
        return Select(self, predicate)

    def project(self, names: Sequence[str]) -> "Project":
        """π over this expression (must retain the sequencing attribute)."""
        return Project(self, names)

    def join(self, other: "Node") -> "SeqJoin":
        """Natural equijoin with *other* on the sequencing attribute."""
        return SeqJoin(self, other)

    def union(self, other: "Node") -> "Union":
        """Set union with *other*."""
        return Union(self, other)

    def minus(self, other: "Node") -> "Difference":
        """Set difference with *other*."""
        return Difference(self, other)

    def groupby_sn(
        self, grouping: Sequence[str], aggregates: Sequence[AggregateSpec]
    ) -> "GroupBySeq":
        """GROUPBY with the sequencing attribute among the grouping list."""
        return GroupBySeq(self, grouping, aggregates)

    def product(self, relation: Any) -> "RelProduct":
        """Temporal cross product with a relation (C × R)."""
        return RelProduct(self, relation)

    def keyjoin(
        self, relation: Any, pairs: Sequence[Tuple[str, str]]
    ) -> "RelKeyJoin":
        """Key-guaranteed join with a relation (the CA-join operator)."""
        return RelKeyJoin(self, relation, pairs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(map(repr, self.children))})"


class ChronicleScan(Node):
    """Leaf node: a base chronicle."""

    def __init__(self, chronicle: Chronicle) -> None:
        self.chronicle = chronicle
        self.schema = chronicle.schema
        self.children = ()

    def __repr__(self) -> str:
        return f"Scan({self.chronicle.name})"


class Select(Node):
    """σ_p(C) with p a CA predicate (checked by the validator)."""

    def __init__(self, child: Node, predicate: Predicate) -> None:
        # Every referenced attribute must exist; fail at build time.
        for name in predicate.attributes():
            child.schema.position(name)
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.children = (child,)

    def __repr__(self) -> str:
        return f"Select({self.predicate!r}, {self.child!r})"


class Project(Node):
    """Π over attributes that include the sequencing attribute."""

    def __init__(self, child: Node, names: Sequence[str]) -> None:
        names = list(names)
        seq = child.schema.sequence_attribute
        if seq is not None and seq not in names:
            raise NotAChronicleError(
                f"projection onto {names} drops the sequencing attribute "
                f"{seq!r}; the result would not be a chronicle (Theorem 4.3). "
                f"Use the summarization step (SCA) to eliminate it."
            )
        self.child = child
        self.names = tuple(names)
        self.schema = child.schema.project(names)
        self.children = (child,)

    def __repr__(self) -> str:
        return f"Project({list(self.names)}, {self.child!r})"


class SeqJoin(Node):
    """Natural equijoin of two chronicles on the sequencing attribute.

    One of the two sequencing attributes is projected out of the result
    (Definition 4.1); the output schema is the left schema followed by the
    right schema minus its sequencing attribute, with name clashes
    prefixed ``r_``.
    """

    def __init__(self, left: Node, right: Node) -> None:
        if left.schema.sequence_attribute is None or right.schema.sequence_attribute is None:
            raise NotAChronicleError("sequence join requires two chronicle operands")
        left._require_same_group(right, "sequence join")
        self.left = left
        self.right = right
        right_kept = [
            n for n in right.schema.names if n != right.schema.sequence_attribute
        ]
        self._right_kept = tuple(right_kept)
        self._right_positions = right.schema.positions(right_kept)
        self.schema = left.schema.concat(right.schema.project(right_kept))
        self.children = (left, right)

    def combine(self, left_row: Row, right_row: Row) -> Row:
        """Join one matching pair into an output row."""
        values = left_row.values + tuple(
            right_row.values[p] for p in self._right_positions
        )
        return Row(self.schema, values, validate=False)

    def __repr__(self) -> str:
        return f"SeqJoin({self.left!r}, {self.right!r})"


class Union(Node):
    """C1 ∪ C2 over same-typed chronicles of one group."""

    def __init__(self, left: Node, right: Node) -> None:
        left.schema.require_compatible(right.schema, "chronicle union")
        left._require_same_group(right, "chronicle union")
        self.left = left
        self.right = right
        self.schema = left.schema
        self.children = (left, right)


class Difference(Node):
    """C1 − C2 over same-typed chronicles of one group."""

    def __init__(self, left: Node, right: Node) -> None:
        left.schema.require_compatible(right.schema, "chronicle difference")
        left._require_same_group(right, "chronicle difference")
        self.left = left
        self.right = right
        self.schema = left.schema
        self.children = (left, right)


class GroupBySeq(Node):
    """GROUPBY(C, GL, AL) with the sequencing attribute in GL.

    Because every group contains one sequence number and appends only
    bring fresh sequence numbers, delta groups are brand-new groups — the
    aggregation step of the Theorem 4.2 proof.
    """

    def __init__(
        self,
        child: Node,
        grouping: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        grouping = list(grouping)
        seq = child.schema.sequence_attribute
        if seq is None or seq not in grouping:
            raise NotAChronicleError(
                f"chronicle-algebra GROUPBY must group by the sequencing "
                f"attribute {seq!r}; grouping without it belongs to the "
                f"summarization step (Theorem 4.3)"
            )
        if not aggregates:
            raise AlgebraError("GROUPBY requires at least one aggregation function")
        for name in grouping:
            child.schema.position(name)
        for agg in aggregates:
            if agg.attribute is not None:
                child.schema.position(agg.attribute)
        self.child = child
        self.grouping = tuple(grouping)
        self.aggregates = tuple(aggregates)
        attrs = [child.schema.attribute(name) for name in grouping]
        attrs += [aggregate_attribute(child.schema, a) for a in aggregates]
        self.schema = Schema(attrs, sequence_attribute=seq)
        self.children = (child,)

    def __repr__(self) -> str:
        return (
            f"GroupBySeq({list(self.grouping)}, {list(self.aggregates)}, {self.child!r})"
        )


class RelProduct(Node):
    """C × R — cross product with an implicit temporal join (Sec. 2.3).

    Each chronicle tuple is combined with the version of R current at the
    tuple's sequence number.  Maintenance only ever needs the *current*
    version (proactive updates), so the delta step costs O(|R|) per delta
    tuple — the source of the (u·|R|)^j factor in Theorem 4.2.
    """

    def __init__(self, child: Node, relation: Any) -> None:
        if child.schema.sequence_attribute is None:
            raise NotAChronicleError("relation product requires a chronicle operand")
        self.child = child
        self.relation = relation
        self.schema = child.schema.concat(relation.schema)
        self._right_arity = len(relation.schema)
        self.children = (child,)

    def combine(self, chronicle_row: Row, relation_row: Row) -> Row:
        values = chronicle_row.values + relation_row.values
        return Row(self.schema, values, validate=False)

    def __repr__(self) -> str:
        return f"RelProduct({self.child!r}, {self.relation.name})"


class RelKeyJoin(Node):
    """The CA-join operator of Definition 4.2.

    Joins the chronicle expression to a relation on attribute *pairs*
    ``(chronicle_attr, relation_attr)``; the relation-side attributes must
    carry a uniqueness guarantee (the relation's key or a unique index) so
    that at most a constant number of relation tuples match each chronicle
    tuple.  The matched relation key attributes are projected out of the
    result (they duplicate chronicle attributes).
    """

    def __init__(
        self,
        child: Node,
        relation: Any,
        pairs: Sequence[Tuple[str, str]],
    ) -> None:
        if child.schema.sequence_attribute is None:
            raise NotAChronicleError("relation join requires a chronicle operand")
        if not pairs:
            raise AlgebraError("relation join requires at least one attribute pair")
        pairs = [tuple(p) for p in pairs]
        for chronicle_attr, relation_attr in pairs:
            child.schema.position(chronicle_attr)
            relation.schema.position(relation_attr)
        relation_attrs = [r for _, r in pairs]
        if not relation.has_unique_index(relation_attrs):
            raise KeyJoinGuaranteeError(
                f"CA-join on {relation.name}.{relation_attrs} lacks the "
                f"Definition 4.2 guarantee: the join attributes must be a key "
                f"of the relation (or carry a unique index) so at most a "
                f"constant number of tuples match"
            )
        self.child = child
        self.relation = relation
        self.pairs: Tuple[Tuple[str, str], ...] = tuple(pairs)
        kept = [n for n in relation.schema.names if n not in relation_attrs]
        self._kept = tuple(kept)
        self._kept_positions = relation.schema.positions(kept)
        self._child_positions = child.schema.positions([c for c, _ in pairs])
        self.relation_attrs = tuple(relation_attrs)
        self.schema = child.schema.concat(relation.schema.project(kept))
        self.children = (child,)

    def probe_key(self, chronicle_row: Row) -> Any:
        """The relation-side lookup key for one chronicle row."""
        values = tuple(chronicle_row.values[p] for p in self._child_positions)
        return values[0] if len(values) == 1 else values

    def combine(self, chronicle_row: Row, relation_row: Row) -> Row:
        values = chronicle_row.values + tuple(
            relation_row.values[p] for p in self._kept_positions
        )
        return Row(self.schema, values, validate=False)

    def __repr__(self) -> str:
        return f"RelKeyJoin({self.child!r}, {self.relation.name}, {list(self.pairs)})"


# ---------------------------------------------------------------------------
# Extension operators — outside CA (Theorem 4.3(2))
# ---------------------------------------------------------------------------


class ChronicleProduct(Node):
    """C1 × C2 — cross product *between chronicles*.

    Not part of CA: maintaining it requires looking up all old tuples of
    one chronicle whenever the other grows, putting maintenance in
    IM-C^k.  Provided (and so marked) purely to demonstrate Theorem
    4.3(2); the delta engine refuses it unless explicitly granted
    chronicle access.
    """

    def __init__(self, left: Node, right: Node) -> None:
        if left.schema.sequence_attribute is None or right.schema.sequence_attribute is None:
            raise NotAChronicleError("chronicle product requires chronicle operands")
        left._require_same_group(right, "chronicle product")
        self.left = left
        self.right = right
        # Both sequence numbers survive; the left one remains the
        # distinguished sequencing attribute of the (pseudo-)chronicle.
        self.schema = left.schema.concat(right.schema)
        self._right_arity = len(right.schema)
        self.children = (left, right)

    def combine(self, left_row: Row, right_row: Row) -> Row:
        return Row(self.schema, left_row.values + right_row.values, validate=False)


class NonEquiSeqJoin(Node):
    """C1 ⋈_{SN θ SN} C2 with θ a non-equality comparison.

    Not part of CA for the same reason as :class:`ChronicleProduct`
    (Theorem 4.3(2)): old chronicle tuples must be revisited.
    """

    def __init__(self, left: Node, right: Node, op: str) -> None:
        if op == "=":
            raise AlgebraError("use SeqJoin for the equijoin on sequence numbers")
        if op not in ("<", "<=", ">", ">=", "!="):
            raise AlgebraError(f"unknown comparison operator {op!r}")
        if left.schema.sequence_attribute is None or right.schema.sequence_attribute is None:
            raise NotAChronicleError("sequence join requires chronicle operands")
        left._require_same_group(right, "non-equi sequence join")
        self.left = left
        self.right = right
        self.op = op
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)

    def combine(self, left_row: Row, right_row: Row) -> Row:
        return Row(self.schema, left_row.values + right_row.values, validate=False)


def scan(chronicle: Chronicle) -> ChronicleScan:
    """Entry point of the fluent builder: scan a base chronicle."""
    return ChronicleScan(chronicle)
