"""Batch evaluation of chronicle-algebra expressions over stored chronicles.

This is the *oracle*: the non-incremental semantics that incremental
maintenance must agree with.  It requires the base chronicles to retain
their history (``retention=None``) — which is exactly what the chronicle
model says one cannot assume in production, and why the delta engine
exists.

The temporal-join semantics of Section 2.3 is honoured: chronicle-relation
products and joins consult the relation *version* associated with each
chronicle tuple's sequence number (via
:meth:`~repro.relational.versioned.VersionedRelation.version_for`), so
oracle comparisons remain correct even when relations were updated midway
through a replayed stream.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..complexity.counters import GLOBAL_COUNTERS
from ..relational.algebra import Table
from ..relational.tuples import Row
from .ast import (
    ChronicleProduct,
    ChronicleScan,
    Difference,
    GroupBySeq,
    Node,
    NonEquiSeqJoin,
    Project,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union,
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}


def _version_for(relation: Any, sequence_number: int) -> Any:
    """The relation version a tuple at *sequence_number* joins with."""
    version_for = getattr(relation, "version_for", None)
    if version_for is not None:
        return version_for(sequence_number)
    return relation


def evaluate(node: Node) -> Table:
    """Evaluate *node* from scratch over the stored chronicles."""
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise TypeError(f"no evaluation rule for {type(node).__name__}")
    return handler(node)


def _scan(node: ChronicleScan) -> Table:
    return Table(node.schema, list(node.chronicle.rows()), dedup=False)


def _select(node: Select) -> Table:
    child = evaluate(node.child)
    rows = []
    for row in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        if node.predicate.evaluate(row):
            rows.append(row)
    return Table(node.schema, rows, dedup=False)


def _project(node: Project) -> Table:
    child = evaluate(node.child)
    rows = [row.project(node.names, node.schema) for row in child.rows]
    GLOBAL_COUNTERS.count("tuple_op", len(rows))
    return Table(node.schema, rows)


def _union(node: Union) -> Table:
    left = evaluate(node.left)
    right = evaluate(node.right)
    GLOBAL_COUNTERS.count("tuple_op", len(left.rows) + len(right.rows))
    rows = [row.rebind(node.schema) for row in left.rows]
    rows += [row.rebind(node.schema) for row in right.rows]
    return Table(node.schema, rows)


def _difference(node: Difference) -> Table:
    left = evaluate(node.left)
    right = evaluate(node.right)
    removed = {row.values for row in right.rows}
    rows = [row.rebind(node.schema) for row in left.rows if row.values not in removed]
    GLOBAL_COUNTERS.count("tuple_op", len(left.rows))
    return Table(node.schema, rows)


def _seq_join(node: SeqJoin) -> Table:
    left = evaluate(node.left)
    right = evaluate(node.right)
    right_seq = node.right.schema.position(node.right.schema.sequence_attribute)
    buckets: Dict[Any, List[Row]] = {}
    for row in right.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        buckets.setdefault(row.values[right_seq], []).append(row)
    left_seq = node.left.schema.position(node.left.schema.sequence_attribute)
    rows = []
    for lrow in left.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        for rrow in buckets.get(lrow.values[left_seq], ()):
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(lrow, rrow))
    return Table(node.schema, rows)


def _group_by_seq(node: GroupBySeq) -> Table:
    child = evaluate(node.child)
    positions = node.child.schema.positions(node.grouping)
    states: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for row in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        key = tuple(row.values[p] for p in positions)
        if key not in states:
            states[key] = [a.function.initial() for a in node.aggregates]
            order.append(key)
        accumulators = states[key]
        for i, agg in enumerate(node.aggregates):
            GLOBAL_COUNTERS.count("aggregate_step")
            accumulators[i] = agg.function.step(accumulators[i], agg.argument(row))
    rows = []
    for key in order:
        finals = tuple(
            agg.function.finalize(state)
            for agg, state in zip(node.aggregates, states[key])
        )
        rows.append(Row(node.schema, key + finals, validate=False))
    return Table(node.schema, rows, dedup=False)


def _rel_product(node: RelProduct) -> Table:
    child = evaluate(node.child)
    seq_position = node.child.schema.position(node.child.schema.sequence_attribute)
    rows = []
    for crow in child.rows:
        version = _version_for(node.relation, crow.values[seq_position])
        for rrow in version.rows():
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(crow, rrow))
    return Table(node.schema, rows)


def _rel_key_join(node: RelKeyJoin) -> Table:
    child = evaluate(node.child)
    seq_position = node.child.schema.position(node.child.schema.sequence_attribute)
    rows = []
    for crow in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        version = _version_for(node.relation, crow.values[seq_position])
        for rrow in version.lookup(node.relation_attrs, node.probe_key(crow)):
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(crow, rrow))
    return Table(node.schema, rows)


def _chronicle_product(node: ChronicleProduct) -> Table:
    left = evaluate(node.left)
    right = evaluate(node.right)
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(lrow, rrow))
    return Table(node.schema, rows)


def _non_equi_join(node: NonEquiSeqJoin) -> Table:
    left = evaluate(node.left)
    right = evaluate(node.right)
    compare = _OPS[node.op]
    left_seq = node.left.schema.position(node.left.schema.sequence_attribute)
    right_seq = node.right.schema.position(node.right.schema.sequence_attribute)
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            if compare(lrow.values[left_seq], rrow.values[right_seq]):
                rows.append(node.combine(lrow, rrow))
    return Table(node.schema, rows)


_HANDLERS = {
    ChronicleScan: _scan,
    Select: _select,
    Project: _project,
    Union: _union,
    Difference: _difference,
    SeqJoin: _seq_join,
    GroupBySeq: _group_by_seq,
    RelProduct: _rel_product,
    RelKeyJoin: _rel_key_join,
    ChronicleProduct: _chronicle_product,
    NonEquiSeqJoin: _non_equi_join,
}
