"""Delta propagation: the incremental heart of the chronicle model.

Given an append event (one :class:`~repro.core.delta.Delta` per touched
base chronicle), :func:`propagate` computes the delta of any chronicle-
algebra expression using exactly the rewrite rules of the Theorem 4.1
proof:

====================  =====================================================
operator               delta rule
====================  =====================================================
σ_p(E)                 σ_p(ΔE)
Π_A(E)                 Π_A(ΔE)
E1 ∪ E2                ΔE1 ∪ ΔE2
E1 − E2                ΔE1 − ΔE2
E1 ⋈_SN E2             ΔE1 ⋈_SN ΔE2            (old⋈new terms provably empty)
GROUPBY(E, GL∋SN, AL)  GROUPBY(ΔE, GL, AL)     (delta groups are brand new)
E × R                  ΔE × R_current           (proactive updates)
E ⋈_key R              ΔE ⋈_key R_current       (≤ const matches per tuple)
====================  =====================================================

Crucially, no rule reads a stored chronicle or a materialized view: cost
and space depend only on the delta and the relations (Theorem 4.2).  The
two extension operators (chronicle product, non-equijoin) have no such
rule — their deltas are computed, when explicitly permitted, by consulting
the *stored* chronicles, which is exactly why Theorem 4.3 excludes them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, MutableMapping, Optional

from ..complexity.counters import GLOBAL_COUNTERS
from ..core.delta import Delta
from ..errors import ChronicleAccessError
from ..obs import runtime as obs_runtime
from ..relational.tuples import Row
from .ast import (
    ChronicleProduct,
    ChronicleScan,
    Difference,
    GroupBySeq,
    Node,
    NonEquiSeqJoin,
    Project,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union,
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}


def propagate(
    node: Node,
    deltas: Mapping[str, Delta],
    allow_chronicle_access: bool = False,
    cache: Optional[MutableMapping[int, Delta]] = None,
) -> Delta:
    """Compute the delta of *node* for one append event.

    Parameters
    ----------
    node:
        The chronicle-algebra expression.
    deltas:
        Base-chronicle deltas of the append event, keyed by chronicle
        name; chronicles not in the mapping did not change.
    allow_chronicle_access:
        Permit the extension operators (outside CA) to read stored
        chronicle history.  Never set on the maintenance path — it exists
        so the Theorem 4.3 benchmarks can measure the cost CA avoids.
    cache:
        Optional per-event memo: node identity → its delta.  When several
        views share subexpression *objects* (e.g. a common filtered scan
        built once and reused), passing one cache per event computes each
        shared node's delta once.  The registry does this automatically.
    """
    if cache is not None:
        memo = cache.get(id(node))
        if memo is not None:
            GLOBAL_COUNTERS.count("delta_cache_hit")
            return memo
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise TypeError(f"no delta rule for {type(node).__name__}")
    obs = obs_runtime.ACTIVE
    if obs is not None and obs.trace_operators:
        # Mirror of the compiled engine's per-step ``delta`` spans, so
        # traces look the same whichever engine maintains a view.
        tracer = obs.tracer
        span = tracer.start(
            "delta", operator=type(node).__name__, engine="interpreted"
        )
        try:
            result = handler(node, deltas, allow_chronicle_access, cache)
            span.attrs["rows"] = len(result.rows)
        finally:
            tracer.finish(span)
    else:
        result = handler(node, deltas, allow_chronicle_access, cache)
    if cache is not None:
        cache[id(node)] = result
    return result


# -- CA rules ---------------------------------------------------------------------


def _scan(node: ChronicleScan, deltas: Mapping[str, Delta], _: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    delta = deltas.get(node.chronicle.name)
    if delta is None:
        return Delta.empty(node.schema)
    return delta


def _select(node: Select, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    child = propagate(node.child, deltas, access, cache)
    rows = []
    for row in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        if node.predicate.evaluate(row):
            rows.append(row)
    return Delta(node.schema, rows)


def _project(node: Project, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    child = propagate(node.child, deltas, access, cache)
    rows = []
    for row in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        rows.append(row.project(node.names, node.schema))
    return Delta(node.schema, rows)


def _union(node: Union, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    left = propagate(node.left, deltas, access, cache)
    right = propagate(node.right, deltas, access, cache)
    GLOBAL_COUNTERS.count("tuple_op", len(left.rows) + len(right.rows))
    rows = [row.rebind(node.schema) for row in left.rows]
    rows += [row.rebind(node.schema) for row in right.rows]
    return Delta(node.schema, rows)


def _difference(node: Difference, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    left = propagate(node.left, deltas, access, cache)
    right = propagate(node.right, deltas, access, cache)
    removed = {row.values for row in right.rows}
    rows = []
    for row in left.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        if row.values not in removed:
            rows.append(row.rebind(node.schema))
    return Delta(node.schema, rows)


def _seq_join(node: SeqJoin, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    left = propagate(node.left, deltas, access, cache)
    right = propagate(node.right, deltas, access, cache)
    if left.is_empty or right.is_empty:
        # The cross terms ΔE1 ⋈ E2_old and E1_old ⋈ ΔE2 are provably empty
        # (fresh sequence numbers cannot match old ones), so an empty side
        # empties the join.
        return Delta.empty(node.schema)
    seq_position = node.right.schema.position(node.right.schema.sequence_attribute)
    buckets: Dict[Any, List[Row]] = {}
    for row in right.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        buckets.setdefault(row.values[seq_position], []).append(row)
    left_seq = node.left.schema.position(node.left.schema.sequence_attribute)
    rows = []
    for lrow in left.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        for rrow in buckets.get(lrow.values[left_seq], ()):
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(lrow, rrow))
    return Delta(node.schema, rows)


def _group_by_seq(node: GroupBySeq, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    child = propagate(node.child, deltas, access, cache)
    # Every group key contains the (fresh) sequence number, so the delta's
    # groups are complete, brand-new groups: aggregate them outright.
    positions = node.child.schema.positions(node.grouping)
    states: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for row in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        key = tuple(row.values[p] for p in positions)
        if key not in states:
            states[key] = [a.function.initial() for a in node.aggregates]
            order.append(key)
        accumulators = states[key]
        for i, agg in enumerate(node.aggregates):
            GLOBAL_COUNTERS.count("aggregate_step")
            accumulators[i] = agg.function.step(accumulators[i], agg.argument(row))
    rows = []
    for key in order:
        finals = tuple(
            agg.function.finalize(state)
            for agg, state in zip(node.aggregates, states[key])
        )
        rows.append(Row(node.schema, key + finals, validate=False))
    return Delta(node.schema, rows)


def _rel_product(node: RelProduct, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    child = propagate(node.child, deltas, access, cache)
    if child.is_empty:
        return Delta.empty(node.schema)
    # Proactive updates guarantee the current version is the right one for
    # fresh sequence numbers; |R| tuple operations per delta tuple.
    rows = []
    for crow in child.rows:
        for rrow in node.relation.rows():
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(crow, rrow))
    return Delta(node.schema, rows)


def _rel_key_join(node: RelKeyJoin, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    child = propagate(node.child, deltas, access, cache)
    if child.is_empty:
        return Delta.empty(node.schema)
    rows = []
    for crow in child.rows:
        GLOBAL_COUNTERS.count("tuple_op")
        for rrow in node.relation.lookup(node.relation_attrs, node.probe_key(crow)):
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(crow, rrow))
    return Delta(node.schema, rows)


# -- extension rules (Theorem 4.3: these NEED the chronicle) -----------------------


def _chronicle_product(node: ChronicleProduct, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    if not access:
        raise ChronicleAccessError(
            "maintaining a chronicle-chronicle cross product requires reading "
            "stored chronicle history (Theorem 4.3); it is outside CA"
        )
    from .evaluate import evaluate  # local import avoids a module cycle

    left_delta = propagate(node.left, deltas, access, cache)
    right_delta = propagate(node.right, deltas, access, cache)
    left_full = list(evaluate(node.left))
    right_full = list(evaluate(node.right))
    right_delta_values = {row.values for row in right_delta.rows}
    rows = []
    # Δ(E1×E2) = ΔE1 × E2_new  ∪  (E1_new − ΔE1) × ΔE2
    for lrow in left_delta.rows:
        for rrow in right_full:
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(lrow, rrow))
    left_delta_values = {row.values for row in left_delta.rows}
    for lrow in left_full:
        if lrow.values in left_delta_values:
            continue
        for rrow in right_delta.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            rows.append(node.combine(lrow, rrow))
    return Delta(node.schema, rows)


def _non_equi_join(node: NonEquiSeqJoin, deltas: Mapping[str, Delta], access: bool,
          cache: Optional[MutableMapping[int, Delta]] = None) -> Delta:
    if not access:
        raise ChronicleAccessError(
            "maintaining a non-equijoin between chronicles requires reading "
            "stored chronicle history (Theorem 4.3); it is outside CA"
        )
    from .evaluate import evaluate

    compare = _OPS[node.op]
    left_delta = propagate(node.left, deltas, access, cache)
    right_delta = propagate(node.right, deltas, access, cache)
    left_full = list(evaluate(node.left))
    right_full = list(evaluate(node.right))
    left_seq = node.left.schema.position(node.left.schema.sequence_attribute)
    right_seq = node.right.schema.position(node.right.schema.sequence_attribute)
    left_delta_values = {row.values for row in left_delta.rows}
    rows = []
    for lrow in left_delta.rows:
        for rrow in right_full:
            GLOBAL_COUNTERS.count("tuple_op")
            if compare(lrow.values[left_seq], rrow.values[right_seq]):
                rows.append(node.combine(lrow, rrow))
    for lrow in left_full:
        if lrow.values in left_delta_values:
            continue
        for rrow in right_delta.rows:
            GLOBAL_COUNTERS.count("tuple_op")
            if compare(lrow.values[left_seq], rrow.values[right_seq]):
                rows.append(node.combine(lrow, rrow))
    return Delta(node.schema, rows)


_HANDLERS = {
    ChronicleScan: _scan,
    Select: _select,
    Project: _project,
    Union: _union,
    Difference: _difference,
    SeqJoin: _seq_join,
    GroupBySeq: _group_by_seq,
    RelProduct: _rel_product,
    RelKeyJoin: _rel_key_join,
    ChronicleProduct: _chronicle_product,
    NonEquiSeqJoin: _non_equi_join,
}
