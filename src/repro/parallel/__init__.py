"""Sharded parallel view maintenance (see :mod:`repro.parallel.engine`).

Select it through the facade::

    from repro import ChronicleDatabase, DatabaseConfig

    db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=4))
"""

from ..algebra.plan import UNPARTITIONABLE, PartitionSpec, infer_partition
from .engine import (
    MergedView,
    NonPortableViewWarning,
    ParallelMaintainer,
    ProcessShardBackend,
    SerialShardBackend,
    ShardBackend,
    ShardTask,
    ShardedDatabase,
    ShardGroup,
    ShardUnit,
    ThreadShardBackend,
    UnpartitionableViewWarning,
    rebind,
    rebind_summary,
)
from .router import ShardRouter, stable_hash
from .worker import ShardUnitSpec, UnitReplica

__all__ = [
    "MergedView",
    "NonPortableViewWarning",
    "ParallelMaintainer",
    "PartitionSpec",
    "ProcessShardBackend",
    "SerialShardBackend",
    "ShardBackend",
    "ShardGroup",
    "ShardRouter",
    "ShardTask",
    "ShardUnit",
    "ShardUnitSpec",
    "ShardedDatabase",
    "ThreadShardBackend",
    "UNPARTITIONABLE",
    "UnitReplica",
    "UnpartitionableViewWarning",
    "infer_partition",
    "rebind",
    "rebind_summary",
    "stable_hash",
]
