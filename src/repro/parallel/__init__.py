"""Sharded parallel view maintenance (see :mod:`repro.parallel.engine`).

Select it through the facade::

    from repro import ChronicleDatabase, DatabaseConfig

    db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=4))
"""

from ..algebra.plan import UNPARTITIONABLE, PartitionSpec, infer_partition
from .engine import (
    MergedView,
    ParallelMaintainer,
    ShardedDatabase,
    ShardGroup,
    ShardUnit,
    UnpartitionableViewWarning,
    rebind,
    rebind_summary,
)
from .router import ShardRouter

__all__ = [
    "MergedView",
    "ParallelMaintainer",
    "PartitionSpec",
    "ShardGroup",
    "ShardRouter",
    "ShardUnit",
    "ShardedDatabase",
    "UNPARTITIONABLE",
    "UnpartitionableViewWarning",
    "infer_partition",
    "rebind",
    "rebind_summary",
]
