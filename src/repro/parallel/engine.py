"""The sharded maintenance engine: parallel view maintenance by key class.

``ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=N))``
builds a :class:`ShardedDatabase`.  Views whose summary key has copy
lineage to the base records (:func:`~repro.algebra.plan.infer_partition`)
are split into *N* independent partitions, one per worker shard; views
whose keys straddle partitions fall back to the ordinary serial path (a
:class:`UnpartitionableViewWarning` says so).  Appends are admitted and
sequence-stamped exactly once on the serial path, then fanned out:

* **shard unit** — a private :class:`~repro.core.group.ChronicleGroup`
  of *mirror* chronicles (``retention=0`` — the no-access theorem means
  maintenance never reads them, so shards store no chronicle history)
  plus a private :class:`~repro.views.registry.ViewRegistry` holding
  this shard's partition of every view in the key class;
* **key class** — views with *equal* :class:`PartitionSpec` route
  identically and share one row of units (:class:`ShardGroup`); views
  with different specs get their own units, since a shard's registry
  maintains every view it holds against every event it receives;
* **group commit** — :meth:`ShardedDatabase.ingest` admits a window of
  transaction batches (each with its own fresh sequence number), then
  ships each shard *one* coalesced maintenance event for the whole
  window (:meth:`~repro.core.group.ChronicleGroup.ingest_stamped`),
  amortizing the per-event fixed costs that dominate small batches.

Reads merge: :class:`MergedView` routes key lookups to the owning shard
and unions scans, taking each unit's lock so a lookup never observes a
half-applied window (snapshot consistency via per-shard watermarks).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from threading import RLock
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union as TUnion

from ..algebra.ast import (
    ChronicleScan,
    Difference,
    GroupBySeq,
    Node,
    Project,
    RelKeyJoin,
    RelProduct,
    Select,
    SeqJoin,
    Union,
)
from ..algebra.plan import (
    UNPARTITIONABLE,
    PartitionSpec,
    infer_partition,
    is_portable,
    schema_spec,
    summary_spec,
)
from ..core.chronicle import Chronicle, RowValues
from ..core.database import ChronicleDatabase
from ..core.delta import Delta
from ..core.group import ChronicleGroup
from ..core.sequence import SequenceNumber
from ..errors import ChronicleGroupError, EngineError, ViewRegistrationError
from ..obs import runtime as obs_runtime
from ..obs.health import ShardHealth, ShardLag
from ..relational.algebra import Table
from ..relational.tuples import Row
from ..sca.summarize import GroupBySummary, ProjectSummary, Summary
from ..sca.view import PersistentView
from ..views.registry import ViewRegistry
from .router import ShardRouter
from .worker import (
    ShardUnitSpec,
    WindowTelemetry,
    worker_add_view,
    worker_apply,
    worker_apply_relay,
    worker_install,
    worker_remove_view,
)


class UnpartitionableViewWarning(UserWarning):
    """A view's keys straddle partitions; it runs on the serial shard."""


class NonPortableViewWarning(UnpartitionableViewWarning):
    """A view's definition cannot cross a process boundary; serial shard."""


# ---------------------------------------------------------------------------
# Expression rebinding (real chronicles -> a shard's mirrors)
# ---------------------------------------------------------------------------


def rebind(node: Node, chronicles: Mapping[str, Chronicle]) -> Node:
    """Rebuild an algebra tree over mirror chronicles.

    Relations are shared (replicated read-only — proactive updates reach
    every shard through the one shared object); chronicle scans are
    redirected to the shard's mirrors, which carry the *same*
    :class:`~repro.relational.schema.Schema` objects, so rows stamped on
    the serial path flow into shard maintenance without copying.
    """
    if isinstance(node, ChronicleScan):
        return ChronicleScan(chronicles[node.chronicle.name])
    if isinstance(node, Select):
        return Select(rebind(node.child, chronicles), node.predicate)
    if isinstance(node, Project):
        return Project(rebind(node.child, chronicles), node.names)
    if isinstance(node, SeqJoin):
        return SeqJoin(rebind(node.left, chronicles), rebind(node.right, chronicles))
    if isinstance(node, Union):
        return Union(rebind(node.left, chronicles), rebind(node.right, chronicles))
    if isinstance(node, Difference):
        return Difference(rebind(node.left, chronicles), rebind(node.right, chronicles))
    if isinstance(node, GroupBySeq):
        return GroupBySeq(rebind(node.child, chronicles), node.grouping, node.aggregates)
    if isinstance(node, RelProduct):
        return RelProduct(rebind(node.child, chronicles), node.relation)
    if isinstance(node, RelKeyJoin):
        return RelKeyJoin(rebind(node.child, chronicles), node.relation, node.pairs)
    raise EngineError(
        f"cannot rebind {type(node).__name__} onto shard mirrors; "
        f"views containing it are unpartitionable"
    )


def rebind_summary(summary: Summary, chronicles: Mapping[str, Chronicle]) -> Summary:
    """Rebuild a summary specification over mirror chronicles."""
    expression = rebind(summary.expression, chronicles)
    if isinstance(summary, GroupBySummary):
        return GroupBySummary(
            expression, summary.grouping, summary.aggregates, having=summary.having
        )
    if isinstance(summary, ProjectSummary):
        return ProjectSummary(expression, summary.names)
    raise EngineError(f"cannot rebind summary type {type(summary).__name__}")


# ---------------------------------------------------------------------------
# Shard units and key classes
# ---------------------------------------------------------------------------


class ShardWindow:
    """Dispatch-time context riding along with one maintenance window.

    Built once per write on the admission (serial) thread and shared by
    every task of the window: the trace identity of the producing
    ``ingest`` span (``None`` ids when tracing is off) and the admission
    wall-clock instant, from which workers measure the per-shard
    admission→visible lag.
    """

    __slots__ = ("trace_id", "parent_id", "admitted_at")

    def __init__(
        self,
        trace_id: Optional[int],
        parent_id: Optional[int],
        admitted_at: float,
    ) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.admitted_at = admitted_at


class ShardUnit:
    """One worker shard of one key class: mirrors + a private registry.

    All access to the unit's state — applying a maintenance window,
    reading a view partition — happens under :attr:`lock`, so reads are
    snapshot-consistent: they see whole windows or nothing.
    """

    __slots__ = (
        "index",
        "label",
        "group",
        "registry",
        "lock",
        "watermark",
        "dispatched",
        "dispatched_at",
        "last_apply_at",
        "last_lag_seconds",
        "records_applied",
        "windows_applied",
        "remote_stats",
        "remote_spans",
        "last_window_summary",
    )

    def __init__(
        self,
        index: int,
        label: str,
        source_group: ChronicleGroup,
        compile_plans: bool,
    ) -> None:
        self.index = index
        self.label = label
        self.group = ChronicleGroup(f"{source_group.name}::{label}")
        # No prefilter: units see coalesced multi-batch events, which are
        # large enough that nearly every view is affected — the prefilter
        # would re-scan the whole event per view only to say "yes".  The
        # prefilter stays on the serial registry, where per-batch events
        # are small and most views are untouched.
        self.registry = ViewRegistry(prefilter=False, compile=compile_plans)
        self.group.subscribe(self.registry.on_event)
        self.lock = RLock()
        #: Highest sequence number this shard has absorbed (-1 initially).
        self.watermark: SequenceNumber = -1
        #: Highest sequence number dispatched *to* this shard (set on the
        #: admission thread before the worker runs; ``dispatched >
        #: watermark`` means a window is in flight or queued).
        self.dispatched: SequenceNumber = -1
        #: Admission instant of the most recently dispatched window.
        self.dispatched_at: float = 0.0
        #: Wall-clock instant of the last applied window (0.0 = never).
        self.last_apply_at: float = 0.0
        #: Admission→visible latency of the last applied window.
        self.last_lag_seconds: float = 0.0
        #: Lifetime records / windows absorbed by this shard.
        self.records_applied: int = 0
        self.windows_applied: int = 0
        #: Cumulative registry stats of this shard's worker-process
        #: replica (empty unless the process executor maintains it —
        #: the parent-side registry then never sees events itself).
        self.remote_stats: Dict[str, Any] = {}
        #: The last relayed worker span records (compact dicts) — what a
        #: worker-crash incident bundle reports as the worker's final
        #: observed activity.
        self.remote_spans: List[Dict[str, Any]] = []
        #: Summary of the last window this unit absorbed (shard,
        #: watermark, per-chronicle row counts).
        self.last_window_summary: Optional[Dict[str, Any]] = None

    def mirror(self, chronicle: Chronicle) -> Chronicle:
        """The unit's mirror of a real chronicle (created on demand).

        Mirrors share the real chronicle's schema and store nothing
        (``retention=0``): maintenance never reads the store, so the
        shard only pays for view state, not chronicle history.
        """
        existing = self.group.chronicles.get(chronicle.name)
        if existing is None:
            existing = Chronicle(chronicle.name, chronicle.schema, retention=0)
            self.group.adopt(existing)
        return existing

    def apply(
        self,
        event: Mapping[str, Sequence[Row]],
        watermark: SequenceNumber,
        window: Optional[ShardWindow] = None,
    ) -> None:
        """Absorb one coalesced maintenance window (runs on a worker).

        When *window* carries a trace identity, the ``shard_apply`` span
        is linked to the producing ``ingest``/``append`` span
        (:meth:`~repro.obs.tracer.Tracer.start_linked`), so cross-thread
        traces correlate: every worker span carries the admission span's
        ``trace_id``.
        """
        obs = obs_runtime.ACTIVE
        with self.lock:
            if obs is not None and obs.trace:
                if window is not None and window.trace_id is not None:
                    span = obs.tracer.start_linked(
                        "shard_apply",
                        window.trace_id,
                        window.parent_id,
                        shard=self.label,
                    )
                else:
                    span = obs.tracer.start("shard_apply", shard=self.label)
                try:
                    self.group.ingest_stamped(event, watermark)
                finally:
                    obs.tracer.finish(span)
            else:
                self.group.ingest_stamped(event, watermark)
            records = sum(len(rows) for rows in event.values())
            self.mark_applied(watermark, window, records)

    def mark_applied(
        self,
        watermark: SequenceNumber,
        window: Optional[ShardWindow],
        records: int,
    ) -> None:
        """Watermark/lag bookkeeping shared by every executor backend.

        Caller holds :attr:`lock` and has just made a whole window
        visible (either by applying it in place or by absorbing a
        worker's results).
        """
        self.watermark = watermark
        now = time.time()
        self.last_apply_at = now
        self.windows_applied += 1
        self.records_applied += records
        if window is not None:
            self.last_lag_seconds = max(0.0, now - window.admitted_at)
        obs = obs_runtime.ACTIVE
        if obs is not None:
            # The freshness gauges: how long admission→visible took
            # for the window just absorbed, and how many sequence
            # numbers of dispatched work remain unabsorbed (newer
            # windows may have queued behind this one).
            if window is not None:
                obs.metrics.set(
                    "shard_lag_seconds", self.last_lag_seconds, shard=self.label
                )
            obs.metrics.set(
                "shard_lag_batches",
                max(0, self.dispatched - watermark),
                shard=self.label,
            )

    def absorb(
        self,
        per_view_items: Mapping[str, Sequence[Tuple[Any, Any]]],
        watermark: SequenceNumber,
        window: Optional[ShardWindow],
        records: int,
        worker_seconds: float,
        stats: Dict[str, Any],
        *,
        telemetry: Optional[WindowTelemetry] = None,
        ipc: Optional[Dict[str, Any]] = None,
        worker: Optional[str] = None,
    ) -> None:
        """Make one worker-process window visible (runs on the parent).

        The worker returns only the ``(key, state)`` pairs the window
        touched per view; this merges them into the parent-side
        partition views under the unit lock — the same snapshot
        consistency readers get from the thread executor — and performs
        the same watermark/lag/trace bookkeeping, with the worker's
        wall-clock attached to the ``shard_apply`` span.

        When the telemetry relay is active, *telemetry* carries the
        worker's captured spans and metric deltas, *ipc* the byte/time
        readings of both pickling directions, and *worker* the pool-slot
        label.  The spans are grafted under the ``shard_apply`` span
        (before it finishes — they enter the ring inside the stitched
        ingest trace), the deltas merged into the global registry with
        ``shard``/``worker`` labels, and the IPC readings turned into
        the ``ipc_*`` accounting series.
        """
        obs = obs_runtime.ACTIVE
        with self.lock:
            span = None
            if obs is not None and obs.trace:
                if window is not None and window.trace_id is not None:
                    span = obs.tracer.start_linked(
                        "shard_apply",
                        window.trace_id,
                        window.parent_id,
                        shard=self.label,
                        worker_seconds=worker_seconds,
                    )
                else:
                    span = obs.tracer.start(
                        "shard_apply", shard=self.label, worker_seconds=worker_seconds
                    )
            try:
                for name, items in per_view_items.items():
                    self.registry.view(name).absorb_states(items)
                if span is not None and telemetry is not None and telemetry.spans:
                    graft_attrs = {"worker": worker} if worker is not None else {}
                    obs.tracer.graft(span, telemetry.spans, **graft_attrs)
            finally:
                if span is not None:
                    obs.tracer.finish(span)
            self.remote_stats = stats
            if telemetry is not None:
                self.remote_spans = telemetry.spans
            self.mark_applied(watermark, window, records)
            if obs is not None:
                self._relay_metrics(obs, telemetry, ipc, worker)

    def _relay_metrics(
        self,
        obs: Any,
        telemetry: Optional[WindowTelemetry],
        ipc: Optional[Dict[str, Any]],
        worker: Optional[str],
    ) -> None:
        """Publish one relayed window's IPC accounting and metric deltas."""
        metrics = obs.metrics
        shard = self.label
        if ipc is not None:
            metrics.inc("ipc_bytes_down_total", ipc["bytes_down"], shard=shard)
            metrics.inc("ipc_bytes_up_total", ipc["bytes_up"], shard=shard)
            metrics.observe(
                "ipc_encode_seconds",
                ipc["encode_down_seconds"],
                shard=shard,
                direction="down",
            )
            metrics.observe(
                "ipc_decode_seconds",
                ipc["decode_down_seconds"],
                shard=shard,
                direction="down",
            )
            metrics.observe(
                "ipc_encode_seconds",
                ipc["encode_up_seconds"],
                shard=shard,
                direction="up",
            )
            metrics.observe(
                "ipc_decode_seconds",
                ipc["decode_up_seconds"],
                shard=shard,
                direction="up",
            )
        if telemetry is not None:
            metrics.merge_deltas(telemetry.metrics, shard=shard, worker=worker)
            if telemetry.spans_dropped:
                metrics.inc(
                    "relay_spans_dropped_total", telemetry.spans_dropped, shard=shard
                )
            if telemetry.metrics_dropped:
                metrics.inc(
                    "relay_series_dropped_total",
                    telemetry.metrics_dropped,
                    shard=shard,
                )
            if worker is not None:
                if telemetry.maxrss_bytes:
                    metrics.set(
                        "worker_rss_bytes", telemetry.maxrss_bytes, worker=worker
                    )
                metrics.set(
                    "worker_cpu_seconds", telemetry.cpu_seconds, worker=worker
                )

    # -- portability -------------------------------------------------------------------

    def spec(self) -> ShardUnitSpec:
        """Snapshot everything a worker process needs to replicate this unit.

        Taken under the unit lock, so the fold-state snapshot is
        consistent with :attr:`watermark` — the replica resumes exactly
        where the unit stands.
        """
        with self.lock:
            chronicles = tuple(
                (name, schema_spec(chronicle.schema))
                for name, chronicle in self.group.chronicles.items()
            )
            views = tuple(
                (view.name, summary_spec(view.summary), view.state_export())
                for view in self.registry.views()
            )
            return ShardUnitSpec(
                self.label,
                self.registry.compile,
                chronicles,
                views,
                self.watermark,
            )

    def view_payload(self, name: str) -> Tuple[Any, Any, Any]:
        """The install payload for one view: (summary spec, state, chronicles)."""
        with self.lock:
            view = self.registry.view(name)
            chronicles = tuple(
                (n, schema_spec(chronicle.schema))
                for n, chronicle in self.group.chronicles.items()
            )
            return summary_spec(view.summary), view.state_export(), chronicles

    def __repr__(self) -> str:
        return f"ShardUnit({self.label!r}, watermark={self.watermark})"


class ShardGroup:
    """All worker shards of one partition key class.

    Views whose :class:`PartitionSpec` is *equal* share these units —
    they route records identically, so one event stream maintains them
    all.  Views with different specs must not share units: a unit's
    registry maintains every registered view against every event it
    receives, and rows routed under one spec generally belong to a
    different shard under another.
    """

    def __init__(
        self,
        name: str,
        spec: PartitionSpec,
        source_group: ChronicleGroup,
        shards: int,
        compile_plans: bool,
    ) -> None:
        self.name = name
        self.spec = spec
        self.source_group = source_group
        self.router = ShardRouter(spec, shards)
        self.units: List[ShardUnit] = [
            ShardUnit(i, f"{name}:{i}", source_group, compile_plans)
            for i in range(shards)
        ]
        self.views: Dict[str, Summary] = {}

    def add_view(self, name: str, summary: Summary) -> None:
        """Register one view partition in every unit."""
        chronicles = {c.name: c for c in summary.expression.chronicles()}
        for chronicle in chronicles.values():
            self.router.bind(chronicle)
        for unit in self.units:
            mirrors = {n: unit.mirror(c) for n, c in chronicles.items()}
            rebound = rebind_summary(summary, mirrors)
            with unit.lock:
                unit.registry.register(PersistentView(name, rebound))
        self.views[name] = summary

    def remove_view(self, name: str) -> None:
        for unit in self.units:
            with unit.lock:
                unit.registry.unregister(name)
        del self.views[name]

    def __repr__(self) -> str:
        return (
            f"ShardGroup({self.name!r}, shards={len(self.units)}, "
            f"views={sorted(self.views)})"
        )


class MergedView:
    """Read facade over one view's per-shard partitions.

    Key lookups hash the key to the owning shard; scans union the
    partitions.  Each access takes the unit's lock, so reads are
    snapshot-consistent with respect to maintenance windows.
    """

    def __init__(self, name: str, summary: Summary, shard_group: ShardGroup) -> None:
        self.name = name
        self.summary = summary
        #: The view's original expression over the *real* chronicles.
        self.expression = summary.expression
        self._shard_group = shard_group

    # -- introspection (delegated to the partition views) ----------------------

    @property
    def schema(self) -> Any:
        return self.summary.output_schema

    def _partition(self, unit: ShardUnit) -> PersistentView:
        return unit.registry.view(self.name)

    @property
    def classification(self) -> Any:
        return self._partition(self._shard_group.units[0]).classification

    @property
    def im_class(self) -> Any:
        return self._partition(self._shard_group.units[0]).im_class

    @property
    def language(self) -> Any:
        return self._partition(self._shard_group.units[0]).language

    def chronicle_names(self) -> Tuple[str, ...]:
        return tuple({c.name: None for c in self.expression.chronicles()})

    @property
    def maintenance_count(self) -> int:
        """Total maintenance windows processed across all partitions."""
        return sum(
            self._partition(unit).maintenance_count
            for unit in self._shard_group.units
        )

    # -- reads ------------------------------------------------------------------

    def lookup(self, key: Sequence[Any]) -> Optional[Row]:
        key = tuple(key)
        sg = self._shard_group
        unit = sg.units[sg.router.shard_of_key(key)]
        with unit.lock:
            return self._partition(unit).lookup(key)

    def value(self, key: Sequence[Any], output: str) -> Any:
        key = tuple(key)
        sg = self._shard_group
        unit = sg.units[sg.router.shard_of_key(key)]
        with unit.lock:
            return self._partition(unit).value(key, output)

    def rows(self) -> Any:
        """Union of the partitions (each snapshotted under its lock)."""
        for unit in self._shard_group.units:
            with unit.lock:
                chunk = list(self._partition(unit).rows())
            yield from chunk

    def __iter__(self) -> Any:
        return self.rows()

    def __len__(self) -> int:
        total = 0
        for unit in self._shard_group.units:
            with unit.lock:
                total += len(self._partition(unit))
        return total

    def to_table(self) -> Table:
        return Table(self.schema, list(self.rows()))

    # -- durability --------------------------------------------------------------------

    def export_state(self) -> Tuple[List[Tuple[Any, Any]], int]:
        """Union of the partitions' fold state, for checkpointing.

        Returns ``(state items, total maintenance count)``.  The items
        alone determine the visible rows (``view_row`` is pure), and
        partition keys are disjoint, so the union is the state the
        serial engine would hold — checkpoints are engine-portable.
        """
        items: List[Tuple[Any, Any]] = []
        count = 0
        for unit in self._shard_group.units:
            with unit.lock:
                view = self._partition(unit)
                items.extend(view.state_export())
                count += view.maintenance_count
        return items, count

    def import_state(
        self, items: Sequence[Tuple[Any, Any]], maintenance_count: int = 0
    ) -> None:
        """Restore the partitions from checkpointed fold state.

        Items are routed to their owning shard by the (stable) router
        hash — which is why restore works across processes at all — and
        each partition rebuilds its rows from its bucket.  The combined
        maintenance count is assigned to shard 0 so the merged total
        round-trips.
        """
        sg = self._shard_group
        buckets: List[List[Tuple[Any, Any]]] = [[] for _ in sg.units]
        for key, value in items:
            key = tuple(key)
            buckets[sg.router.shard_of_key(key)].append((key, value))
        for index, unit in enumerate(sg.units):
            with unit.lock:
                self._partition(unit).state_import(
                    buckets[index],
                    maintenance_count=maintenance_count if index == 0 else 0,
                )

    def __repr__(self) -> str:
        return (
            f"MergedView({self.name!r}, shards={len(self._shard_group.units)}, "
            f"rows={len(self)})"
        )


# ---------------------------------------------------------------------------
# The maintainer (executor fan-out)
# ---------------------------------------------------------------------------


class ShardTask:
    """One shard's share of one maintenance window, ready to execute.

    Built on the admission thread by ``_dispatch``; backends decide
    *where* it runs (inline, worker thread, worker process) — the
    routing, watermark bookkeeping, and trace context are already fixed.
    """

    __slots__ = ("unit", "event", "watermark", "window")

    def __init__(
        self,
        unit: ShardUnit,
        event: Mapping[str, Sequence[Row]],
        watermark: SequenceNumber,
        window: Optional[ShardWindow],
    ) -> None:
        self.unit = unit
        self.event = event
        self.watermark = watermark
        self.window = window

    def run_local(self) -> None:
        """Apply the window on the calling thread (serial/thread backends)."""
        self.unit.apply(self.event, self.watermark, self.window)

    def summary(self) -> Dict[str, Any]:
        """A compact description of this task's window, for diagnostics.

        What a worker-crash incident bundle reports about the window
        that killed the worker: enough to characterize (and often
        reproduce) the failure without holding row data.
        """
        return {
            "shard": self.unit.label,
            "watermark": self.watermark,
            "chronicles": {name: len(rows) for name, rows in self.event.items()},
            "records": sum(len(rows) for rows in self.event.values()),
        }


class ShardBackend:
    """Executor-agnostic contract the maintainer dispatches through.

    One dispatch path serves every executor: ``run`` executes a window's
    tasks and re-raises the first failure after all complete (a partial
    window never hides an error); the view/reset hooks let stateful
    backends (worker processes holding replicas) track registration
    changes.  The base class is the inline ``serial`` implementation.
    """

    name = "serial"

    def run(self, tasks: Sequence[ShardTask]) -> None:
        for task in tasks:
            task.run_local()

    def queue_depth(self) -> int:
        """Tasks waiting to execute (0 when nothing is in flight)."""
        return 0

    def view_added(self, shard_group: "ShardGroup", name: str) -> None:
        """A view was registered after workers may have state."""

    def view_removed(self, shard_group: "ShardGroup", name: str) -> None:
        """A view was dropped."""

    def reset_units(self, shard_groups: Sequence["ShardGroup"]) -> None:
        """Parent-side shard state was replaced (restore); resync."""

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialShardBackend(ShardBackend):
    """Run every task inline (deterministic; handy under debuggers)."""


class ThreadShardBackend(ShardBackend):
    """Run tasks on a shared thread pool (the PR-4 executor)."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def run(self, tasks: Sequence[ShardTask]) -> None:
        if len(tasks) == 1:
            tasks[0].run_local()
            return
        futures = [self._pool.submit(task.run_local) for task in tasks]
        error: Optional[BaseException] = None
        for future in futures:
            exc = future.exception()
            if exc is not None and error is None:
                error = exc
        if error is not None:
            raise error

    def queue_depth(self) -> int:
        queue = getattr(self._pool, "_work_queue", None)
        return int(queue.qsize()) if queue is not None else 0

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessShardBackend(ShardBackend):
    """Run tasks in worker processes holding shard replicas.

    Each shard label is pinned to one single-process pool (a replica is
    mutable state; it must only ever live in one process), assigned
    round-robin over *workers* slots.  Pools use the ``spawn`` start
    method — workers import :mod:`repro.parallel.worker` fresh, proving
    the replica really was rebuilt from the portable spec rather than
    inherited address space.  Replicas install lazily on a shard's first
    window (amortized over its lifetime); per window only stamped value
    tuples go down and touched ``(key, state)`` pairs come back.

    With observability installed (and ``relay_telemetry`` on), windows
    travel through :func:`~repro.parallel.worker.worker_apply_relay`
    instead: the parent pre-pickles the window (timing the encode,
    counting the bytes) and the worker piggybacks a bounded
    :class:`~repro.parallel.worker.WindowTelemetry` — captured spans,
    metric deltas, resource readings — on the result, which
    :meth:`ShardUnit.absorb` grafts, merges, and accounts.  With either
    switch off the legacy path runs and the payload is byte-identical.

    A worker that raises keeps its pool: the window failed, the parent
    watermark stands, and the next dispatch retries cleanly.  A worker
    that *dies* breaks its pool; its slot is marked and every subsequent
    dispatch to shards on that slot raises
    :class:`~repro.errors.EngineError` (the replica state is gone — a
    restore or restart must rebuild it).
    """

    name = "process"

    def __init__(self, workers: int, relay_telemetry: bool = True) -> None:
        self.workers = max(1, workers)
        #: Whether windows carry telemetry back when observability is on
        #: (:attr:`~repro.core.config.DatabaseConfig.relay_telemetry`).
        self.relay_telemetry = bool(relay_telemetry)
        self._context = multiprocessing.get_context("spawn")
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * self.workers
        self._assignment: Dict[str, int] = {}
        self._installed: Set[str] = set()
        self._broken: Dict[int, str] = {}

    # -- pool management ---------------------------------------------------------------

    def _slot_of(self, label: str) -> int:
        slot = self._assignment.get(label)
        if slot is None:
            slot = self._assignment[label] = len(self._assignment) % self.workers
        return slot

    def _pool_for(self, label: str) -> ProcessPoolExecutor:
        slot = self._slot_of(label)
        if slot in self._broken:
            raise EngineError(
                f"shard {label!r}'s worker process died previously "
                f"({self._broken[slot]}); its replica state is gone — "
                f"restore from a checkpoint or rebuild the database"
            )
        pool = self._pools[slot]
        if pool is None:
            pool = self._pools[slot] = ProcessPoolExecutor(
                max_workers=1, mp_context=self._context
            )
        return pool

    def _mark_broken(self, label: str, exc: BaseException) -> None:
        slot = self._slot_of(label)
        self._broken[slot] = repr(exc)
        pool = self._pools[slot]
        if pool is not None:
            pool.shutdown(wait=False)
            self._pools[slot] = None
        self._installed = {
            installed
            for installed in self._installed
            if self._assignment.get(installed) != slot
        }

    def _ensure_installed(self, unit: ShardUnit) -> ProcessPoolExecutor:
        pool = self._pool_for(unit.label)
        if unit.label not in self._installed:
            pool.submit(worker_install, unit.spec()).result()
            self._installed.add(unit.label)
        return pool

    # -- dispatch ----------------------------------------------------------------------

    def _relay_active(self) -> bool:
        """Whether windows should travel through the telemetry relay.

        Both switches must be on: the config knob *and* an installed
        observability handle — with either off, dispatch uses the legacy
        :func:`~repro.parallel.worker.worker_apply` entry point and the
        cross-process payload is byte-identical to the minimal contract.
        """
        return self.relay_telemetry and obs_runtime.ACTIVE is not None

    def _encode_task(self, task: ShardTask) -> Tuple[Any, Tuple[Any, ...], Optional[Dict[str, Any]]]:
        """One task's submission: ``(worker fn, args, ipc meta or None)``.

        On the relay path the parent pickles the window itself (so the
        encode can be timed and the bytes counted); the pool then ships
        an opaque ``bytes`` — re-pickling bytes is nearly free.  Off the
        relay path the args are exactly PR 6's ``worker_apply`` payload.
        """
        payload = {
            name: [row.values for row in rows]
            for name, rows in task.event.items()
        }
        if not self._relay_active():
            return worker_apply, (task.unit.label, payload, task.watermark), None
        t0 = time.perf_counter()
        blob = pickle.dumps(
            (payload, task.watermark), protocol=pickle.HIGHEST_PROTOCOL
        )
        encode_seconds = time.perf_counter() - t0
        meta = {"bytes_down": len(blob), "encode_down_seconds": encode_seconds}
        return worker_apply_relay, (task.unit.label, blob), meta

    def _attach_diagnostics(self, exc: BaseException, task: ShardTask) -> None:
        """Stamp the failing task's context onto *exc* for the incident path."""
        try:
            exc.shard_task_summary = task.summary()  # type: ignore[attr-defined]
            exc.worker_spans = task.unit.remote_spans  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - exotic exception types
            pass

    def run(self, tasks: Sequence[ShardTask]) -> None:
        submitted: List[Tuple[ShardTask, Any, Optional[Dict[str, Any]]]] = []
        error: Optional[BaseException] = None
        for task in tasks:
            unit = task.unit
            try:
                pool = self._ensure_installed(unit)
                fn, args, ipc_meta = self._encode_task(task)
                future = pool.submit(fn, *args)
            except BrokenProcessPool as exc:
                # The pool's management thread already noticed the death;
                # submit refuses synchronously.
                self._mark_broken(unit.label, exc)
                if error is None:
                    error = EngineError(
                        f"shard {unit.label!r}'s worker process died: {exc!r}"
                    )
                    error.__cause__ = exc
                    self._attach_diagnostics(error, task)
                continue
            except EngineError as exc:
                # A previously broken slot (_pool_for refuses).
                if error is None:
                    error = exc
                    self._attach_diagnostics(error, task)
                continue
            submitted.append((task, future, ipc_meta))
        for task, future, ipc_meta in submitted:
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                self._mark_broken(task.unit.label, exc)
                if error is None:
                    error = EngineError(
                        f"shard {task.unit.label!r}'s worker process died "
                        f"mid-window: {exc!r}"
                    )
                    error.__cause__ = exc
                    self._attach_diagnostics(error, task)
                continue
            except BaseException as exc:
                if error is None:
                    error = exc
                    self._attach_diagnostics(error, task)
                continue
            if ipc_meta is None:
                items, records, elapsed, stats = result
                task.unit.absorb(
                    items, task.watermark, task.window, records, elapsed, stats
                )
            else:
                blob, worker_decode, worker_encode = result
                t0 = time.perf_counter()
                items, records, elapsed, stats, telemetry = pickle.loads(blob)
                decode_up = time.perf_counter() - t0
                ipc = {
                    "bytes_down": ipc_meta["bytes_down"],
                    "bytes_up": len(blob),
                    "encode_down_seconds": ipc_meta["encode_down_seconds"],
                    "decode_down_seconds": worker_decode,
                    "encode_up_seconds": worker_encode,
                    "decode_up_seconds": decode_up,
                }
                task.unit.absorb(
                    items,
                    task.watermark,
                    task.window,
                    records,
                    elapsed,
                    stats,
                    telemetry=telemetry,
                    ipc=ipc,
                    worker=str(self._slot_of(task.unit.label)),
                )
            task.unit.last_window_summary = task.summary()
        if error is not None:
            raise error

    def queue_depth(self) -> int:
        depth = 0
        for pool in self._pools:
            if pool is not None:
                pending = getattr(pool, "_pending_work_items", None)
                if pending is not None:
                    depth += len(pending)
        return depth

    # -- registration tracking ---------------------------------------------------------

    def view_added(self, shard_group: "ShardGroup", name: str) -> None:
        for unit in shard_group.units:
            if unit.label in self._installed:
                summary_sp, state, chronicles = unit.view_payload(name)
                self._pool_for(unit.label).submit(
                    worker_add_view, unit.label, name, summary_sp, state, chronicles
                ).result()

    def view_removed(self, shard_group: "ShardGroup", name: str) -> None:
        for unit in shard_group.units:
            if unit.label in self._installed:
                self._pool_for(unit.label).submit(
                    worker_remove_view, unit.label, name
                ).result()

    def reset_units(self, shard_groups: Sequence["ShardGroup"]) -> None:
        """Forget installed replicas; next dispatch reinstalls from state."""
        self._installed.clear()

    def close(self) -> None:
        for pool in self._pools:
            if pool is not None:
                pool.shutdown(wait=True)
        self._pools = [None] * self.workers


_BACKENDS = {
    "serial": SerialShardBackend,
    "thread": ThreadShardBackend,
    "process": ProcessShardBackend,
}


class ParallelMaintainer:
    """Fans per-shard maintenance tasks out through a :class:`ShardBackend`.

    ``executor="thread"`` runs tasks on a worker thread pool;
    ``"serial"`` runs them inline (deterministic, handy under
    debuggers); ``"process"`` ships windows to worker processes holding
    portable shard replicas — true multi-core maintenance.  The dispatch
    path, watermark bookkeeping, lag gauges, and trace correlation are
    identical across executors; only *where* a window executes differs.
    """

    def __init__(
        self,
        executor: str = "thread",
        workers: int = 4,
        relay_telemetry: bool = True,
    ) -> None:
        factory = _BACKENDS.get(executor)
        if factory is None:
            raise EngineError(f"unknown executor {executor!r}")
        self.executor = executor
        self.workers = workers
        if executor == "serial":
            self._backend: ShardBackend = factory()
        elif executor == "process":
            self._backend = factory(workers, relay_telemetry)
        else:
            self._backend = factory(workers)

    def run(self, tasks: Sequence[ShardTask]) -> None:
        """Run every task; re-raises the first failure after all finish."""
        if not tasks:
            return
        self._backend.run(tasks)

    def queue_depth(self) -> int:
        """Tasks waiting in the backend's queue (0 for serial).

        A best-effort probe of the executor's internal work queue —
        under the synchronous :meth:`run` it only exceeds zero while a
        window is mid-flight, which is exactly when health snapshots
        taken from other threads want to see it.
        """
        return self._backend.queue_depth()

    def view_added(self, shard_group: "ShardGroup", name: str) -> None:
        self._backend.view_added(shard_group, name)

    def view_removed(self, shard_group: "ShardGroup", name: str) -> None:
        self._backend.view_removed(shard_group, name)

    def reset_units(self, shard_groups: Sequence["ShardGroup"]) -> None:
        self._backend.reset_units(shard_groups)

    def close(self) -> None:
        self._backend.close()

    def __repr__(self) -> str:
        return f"ParallelMaintainer(executor={self.executor!r}, workers={self.workers})"


# ---------------------------------------------------------------------------
# The sharded database
# ---------------------------------------------------------------------------


class ShardedDatabase(ChronicleDatabase):
    """A chronicle database maintaining partitionable views in parallel.

    Construction goes through the facade::

        db = ChronicleDatabase(config=DatabaseConfig(engine="sharded", shards=4))

    Admission stays serial (one sequence-number domain per group —
    Section 4's ordering requirement), maintenance fans out.  Views that
    cannot be partitioned run exactly as in the serial engine, on the
    base registry; everything else lives in per-key-class
    :class:`ShardGroup` units and is read through :class:`MergedView`.
    """

    def __init__(self, config: Any = None, **legacy: Any) -> None:
        super().__init__(config=config, **legacy)
        if self.config.engine != "sharded":
            self.config = self.config.replace(engine="sharded")
        self._maintainer = ParallelMaintainer(
            executor=self.config.executor,
            workers=self.config.shards,
            relay_telemetry=getattr(self.config, "relay_telemetry", True),
        )
        self._shard_groups: Dict[Tuple[str, Any], ShardGroup] = {}
        self._merged: Dict[str, MergedView] = {}
        self._fallbacks: List[str] = []

    # -- view registration --------------------------------------------------------

    def _register_summary(
        self, view_name: str, summary: Summary, materialize: bool
    ) -> TUnion[PersistentView, MergedView]:
        if view_name in self._merged:
            raise ViewRegistrationError(f"view name {view_name!r} already registered")
        spec = infer_partition(summary)
        fallback: Optional[Tuple[str, type]] = None
        if spec is UNPARTITIONABLE:
            fallback = (
                f"view {view_name!r} is unpartitionable (its summary key has "
                f"no copy lineage to every scanned chronicle); maintaining it "
                f"on the serial shard",
                UnpartitionableViewWarning,
            )
        elif self.config.executor == "process" and not is_portable(summary):
            # The process executor must ship the view definition to a
            # worker; a definition referencing process-local state (live
            # relations, lambdas in user aggregates) cannot cross.
            fallback = (
                f"view {view_name!r} has no portable definition (it "
                f"references process-local state such as a relation or a "
                f"non-picklable function); maintaining it on the serial shard",
                NonPortableViewWarning,
            )
        if fallback is not None:
            message, category = fallback
            warnings.warn(message, category, stacklevel=4)
            obs = obs_runtime.ACTIVE
            if obs is not None:
                obs.metrics.inc("shard_fallback_total", view=view_name)
            self._fallbacks.append(view_name)
            return super()._register_summary(view_name, summary, materialize)
        if view_name in self.registry:
            raise ViewRegistrationError(f"view name {view_name!r} already registered")
        source_group = summary.expression.group
        shard_group = self._shard_group_for(spec, source_group)
        shard_group.add_view(view_name, summary)
        merged = MergedView(view_name, summary, shard_group)
        self._merged[view_name] = merged
        if materialize:
            self._materialize_partitioned(shard_group, view_name, summary)
        # After materialization, so an installed worker replica receives
        # the view's seeded state, not an empty partition.
        self._maintainer.view_added(shard_group, view_name)
        return merged

    def _shard_group_for(
        self, spec: PartitionSpec, source_group: ChronicleGroup
    ) -> ShardGroup:
        key = (source_group.name, spec.canonical())
        shard_group = self._shard_groups.get(key)
        if shard_group is None:
            shard_group = ShardGroup(
                f"kc{len(self._shard_groups)}",
                spec,
                source_group,
                self.config.shards,
                compile_plans=self.config.compile_views,
            )
            self._shard_groups[key] = shard_group
        return shard_group

    def _materialize_partitioned(
        self, shard_group: ShardGroup, view_name: str, summary: Summary
    ) -> None:
        """Initialize a new view's partitions from stored history.

        Routes the retained rows of each scanned chronicle to their
        shards and folds them into *this view only* (sibling views of
        the key class already absorbed that history incrementally).
        """
        pending: Dict[int, Dict[str, List[Row]]] = {}
        for chronicle in {c.name: c for c in summary.expression.chronicles()}.values():
            real = self.chronicle(chronicle.name)
            if not real.appended_count or real.retention == 0:
                continue
            routed = shard_group.router.route(chronicle.name, list(real.rows()))
            for index, rows in routed.items():
                pending.setdefault(index, {}).setdefault(
                    chronicle.name, []
                ).extend(rows)
        for index, event in pending.items():
            unit = shard_group.units[index]
            with unit.lock:
                view = unit.registry.view(view_name)
                deltas = {
                    name: Delta(unit.group[name].schema, tuple(rows))
                    for name, rows in event.items()
                }
                view.apply_event(deltas)

    def drop_view(self, name: str) -> None:
        merged = self._merged.pop(name, None)
        if merged is None:
            super().drop_view(name)
            return
        self._maintainer.view_removed(merged._shard_group, name)
        merged._shard_group.remove_view(name)
        if self._durability is not None:
            self._durability.record_ddl(("drop_view", name))

    def view(self, name: str) -> Any:
        """Fetch a view handle: merged for partitioned views."""
        merged = self._merged.get(name)
        if merged is not None:
            return merged
        return super().view(name)

    # -- appends ---------------------------------------------------------------------

    def _ingest_span(self, group_name: str, path: str) -> Optional[Any]:
        """Open the root ``ingest`` span for one sharded write, if tracing.

        The span brackets admission through all-shards-visible (dispatch
        is synchronous), so its duration is the end-to-end freshness gap;
        its identity is what worker-thread ``shard_apply`` spans link to.
        """
        obs = obs_runtime.ACTIVE
        if obs is None or not obs.trace or not self._shard_groups:
            return None
        return obs.tracer.start("ingest", group=group_name, path=path)

    def _finish_ingest_span(self, span: Optional[Any], **attrs: Any) -> None:
        if span is None:
            return
        obs = obs_runtime.ACTIVE
        if obs is None:
            return
        span.attrs.update(attrs)
        obs.tracer.finish(span)

    def append(
        self,
        chronicle: str,
        records: TUnion[RowValues, Sequence[RowValues]],
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Tuple[Row, ...]:
        group = self._owning_group(chronicle)
        span = self._ingest_span(group.name, "append")
        try:
            admitted_at = time.time()
            rows = group.append(
                chronicle, records, sequence_number=sequence_number, instant=instant
            )
            if rows and self._shard_groups:
                pending = self._route({chronicle: rows})
                self._dispatch(pending, group.watermark, admitted_at)
            if self._durability is not None:
                self._durability.batch_committed()
            return rows
        finally:
            self._finish_ingest_span(span, batches=1)

    def append_simultaneous(
        self,
        batches: Mapping[str, TUnion[RowValues, Sequence[RowValues]]],
        group: str = "default",
        sequence_number: Optional[SequenceNumber] = None,
        instant: Optional[float] = None,
    ) -> Dict[str, Tuple[Row, ...]]:
        owner = self.group(group)
        span = self._ingest_span(owner.name, "append_simultaneous")
        try:
            admitted_at = time.time()
            stamped = owner.append_simultaneous(
                batches, sequence_number=sequence_number, instant=instant
            )
            event = {name: rows for name, rows in stamped.items() if rows}
            if event and self._shard_groups:
                pending = self._route(event)
                self._dispatch(pending, owner.watermark, admitted_at)
            if self._durability is not None:
                self._durability.batch_committed()
            return stamped
        finally:
            self._finish_ingest_span(span, batches=1)

    def ingest(
        self,
        chronicle: str,
        batches: Sequence[TUnion[RowValues, Sequence[RowValues]]],
        instant: Optional[float] = None,
    ) -> int:
        """Group commit: admit a window of batches, maintain once per shard.

        Each batch is admitted serially with its own fresh sequence
        number (unpartitionable and periodic views are maintained per
        batch, exactly as the serial engine would), but each shard
        receives **one** coalesced event for the whole window — the
        per-event fixed costs are paid once instead of ``len(batches)``
        times.  Returns the number of records admitted.
        """
        group = self._owning_group(chronicle)
        span = self._ingest_span(group.name, "ingest")
        try:
            admitted_at = time.time()
            pending: Dict[ShardGroup, Dict[int, Dict[str, List[Row]]]] = {}
            total = 0
            for records in batches:
                rows = group.append(chronicle, records, instant=instant)
                total += len(rows)
                if rows and self._shard_groups:
                    self._route({chronicle: rows}, into=pending)
            if pending:
                self._dispatch(pending, group.watermark, admitted_at)
            if self._durability is not None:
                self._durability.batch_committed()
            return total
        finally:
            self._finish_ingest_span(span, batches=len(batches))

    def _owning_group(self, chronicle: str) -> ChronicleGroup:
        group_name = self._chronicle_group.get(chronicle)
        if group_name is None:
            raise ChronicleGroupError(f"no chronicle named {chronicle!r}")
        return self.groups[group_name]

    def _route(
        self,
        event: Mapping[str, Tuple[Row, ...]],
        into: Optional[Dict[ShardGroup, Dict[int, Dict[str, List[Row]]]]] = None,
    ) -> Dict[ShardGroup, Dict[int, Dict[str, List[Row]]]]:
        """Bucket one stamped event by (key class, shard) into *into*."""
        pending = into if into is not None else {}
        for shard_group in self._shard_groups.values():
            spec_chronicles = shard_group.spec.keys
            for name, rows in event.items():
                if name not in spec_chronicles:
                    continue
                routed = shard_group.router.route(name, rows)
                units = pending.setdefault(shard_group, {})
                for index, bucket in routed.items():
                    units.setdefault(index, {}).setdefault(name, []).extend(bucket)
        return pending

    def _dispatch(
        self,
        pending: Dict[ShardGroup, Dict[int, Dict[str, List[Row]]]],
        watermark: SequenceNumber,
        admitted_at: Optional[float] = None,
    ) -> None:
        tasks: List[ShardTask] = []
        obs = obs_runtime.ACTIVE
        window: Optional[ShardWindow] = None
        if admitted_at is None:
            admitted_at = time.time()
        if obs is not None:
            trace_id = parent_id = None
            if obs.trace:
                producer = obs.tracer.current()
                if producer is not None:
                    trace_id = producer.trace_id
                    parent_id = producer.span_id
            window = ShardWindow(trace_id, parent_id, admitted_at)
        for shard_group, units in pending.items():
            for index, event in units.items():
                unit = shard_group.units[index]
                # Mark the dispatch on the admission thread *before* the
                # worker runs: a concurrent health probe or scrape sees
                # the in-flight window as lag, not as silence.
                unit.dispatched = watermark
                unit.dispatched_at = admitted_at
                tasks.append(ShardTask(unit, event, watermark, window))
                if obs is not None:
                    obs.metrics.inc(
                        "shard_records_total",
                        sum(len(rows) for rows in event.values()),
                        shard=unit.label,
                    )
                    obs.metrics.set(
                        "shard_lag_batches",
                        max(0, watermark - unit.watermark),
                        shard=unit.label,
                    )
        try:
            self._maintainer.run(tasks)
        except BaseException as exc:
            if obs is not None:
                obs.metrics.inc("engine_errors_total")
                obs.incident(
                    "shard-worker-error",
                    error=repr(exc),
                    watermark=watermark,
                    watermarks=self.watermarks(),
                    # The failing task's window summary and the worker's
                    # last relayed spans (when the backend could attach
                    # them) — a crash should be diagnosable from the
                    # bundle without reproducing it.
                    window=getattr(exc, "shard_task_summary", None),
                    worker_spans=getattr(exc, "worker_spans", None),
                )
            raise

    # -- stats / introspection ---------------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        """Database-wide maintenance stats merged across every registry."""
        units = [
            unit
            for shard_group in self._shard_groups.values()
            for unit in shard_group.units
        ]
        return ViewRegistry.merge_stats(
            [self.registry.stats]
            + [unit.registry.stats for unit in units]
            # Under the process executor the maintaining registry lives
            # in the worker; each window returns its cumulative stats.
            + [unit.remote_stats for unit in units if unit.remote_stats]
        )

    def watermarks(self) -> Dict[str, SequenceNumber]:
        """Per-shard absorption watermarks (plus the serial admission one)."""
        marks: Dict[str, SequenceNumber] = {
            f"serial/{name}": group.watermark for name, group in self.groups.items()
        }
        for shard_group in self._shard_groups.values():
            for unit in shard_group.units:
                marks[unit.label] = unit.watermark
        return marks

    def shard_health(self) -> ShardHealth:
        """A live freshness snapshot across every shard unit.

        Lag is measured against what was *dispatched to* each unit, not
        the global admission watermark — a shard that simply received no
        rows for a while is caught up, not lagging.  ``lag_seconds`` is
        staleness: zero when absorbed, else the age of the oldest
        in-flight window.
        """
        now = time.time()
        admission = max(
            (group.watermark for group in self.groups.values()), default=-1
        )
        shards: List[ShardLag] = []
        for shard_group in self._shard_groups.values():
            for unit in shard_group.units:
                behind = unit.dispatched > unit.watermark
                shards.append(
                    ShardLag(
                        shard=unit.label,
                        watermark=unit.watermark,
                        lag_batches=max(0, unit.dispatched - unit.watermark),
                        lag_seconds=(
                            max(0.0, now - unit.dispatched_at) if behind else 0.0
                        ),
                        records_applied=unit.records_applied,
                        windows_applied=unit.windows_applied,
                        last_apply_at=unit.last_apply_at,
                    )
                )
        return ShardHealth(
            admission_watermark=admission,
            shards=tuple(shards),
            queue_depth=self._maintainer.queue_depth(),
            at=now,
        )

    @property
    def fallback_views(self) -> Tuple[str, ...]:
        """Names of views that fell back to the serial shard."""
        return tuple(self._fallbacks)

    @property
    def partitioned_views(self) -> Tuple[str, ...]:
        """Names of views maintained across worker shards."""
        return tuple(sorted(self._merged))

    @property
    def shard_groups(self) -> Tuple[ShardGroup, ...]:
        return tuple(self._shard_groups.values())

    # -- durability -------------------------------------------------------------------

    def restore(self, source: Any) -> None:
        """Restore from a checkpoint, then resync shard bookkeeping.

        Routing is :func:`~repro.parallel.router.stable_hash`-based, so a
        checkpoint written by any process (or the serial engine) restores
        here with every key on its owning shard.  Unit watermarks advance
        to the restored admission watermark, and process-executor worker
        replicas are invalidated — the next window reinstalls them from
        the restored state.
        """
        super().restore(source)
        for shard_group in self._shard_groups.values():
            watermark = shard_group.source_group.watermark
            for unit in shard_group.units:
                with unit.lock:
                    unit.watermark = watermark
                    unit.dispatched = watermark
        self._maintainer.reset_units(self.shard_groups)

    def _replay_stamped(
        self,
        group: ChronicleGroup,
        event: Mapping[str, Tuple[Row, ...]],
        watermark: SequenceNumber,
    ) -> None:
        """Watermark-aware replay: serial part, then only the lagging shards.

        The serial admission group (fallback/unpartitionable/periodic
        views) absorbs the event when its watermark is still behind;
        each routed shard unit receives it only if that unit's own
        watermark is behind — a snapshot taken mid-stream leaves nothing
        to re-apply on the shards it already covers.
        """
        super()._replay_stamped(group, event, watermark)
        if not self._shard_groups:
            return
        pending = self._route(event)
        filtered: Dict[ShardGroup, Dict[int, Dict[str, List[Row]]]] = {}
        for shard_group, units in pending.items():
            keep = {
                index: unit_event
                for index, unit_event in units.items()
                if shard_group.units[index].watermark < watermark
            }
            if keep:
                filtered[shard_group] = keep
        if filtered:
            self._dispatch(filtered, watermark)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down, then the base resources."""
        self._maintainer.close()
        super().close()

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase(shards={self.config.shards}, "
            f"key_classes={len(self._shard_groups)}, "
            f"partitioned={sorted(self._merged)}, "
            f"fallbacks={sorted(self._fallbacks)})"
        )
