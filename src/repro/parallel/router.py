"""Hash-routing of transaction records to worker shards.

A :class:`~repro.algebra.plan.PartitionSpec` proves that every record of
a chronicle can only ever touch view rows whose summary key copies the
record's *routing attributes* (copy lineage, see
:func:`~repro.algebra.plan.infer_partition`).  The router turns that
proof into placement: hash the routing-attribute tuple, take it modulo
the shard count, and both the record and every view key it can produce
land on the same shard.  A summary-key lookup hashes the key values
themselves — the same tuple — to find the owning shard without touching
the others.

Hashing uses :func:`stable_hash` — CRC-32 over the canonical ``repr`` of
the value tuple — **not** Python's built-in ``hash``.  The builtin is
salted per interpreter (``PYTHONHASHSEED``), which made shard placement
a process-local accident: checkpoints could not be restored into a new
process, and worker processes could not agree with the parent on who
owns which key.  ``stable_hash`` is identical across interpreter runs,
hash seeds, and platforms, so shard state is *portable*: a checkpoint
written by one process restores into another, and the process executor
(:mod:`repro.parallel.worker`) routes exactly like the admission thread.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Sequence, Tuple

from ..algebra.plan import PartitionSpec
from ..core.chronicle import Chronicle
from ..relational.tuples import Row


def _canonical(value: Any) -> Any:
    """Normalize cross-type-equal values so they hash identically.

    The builtin ``hash`` guarantees ``hash(1) == hash(1.0) == hash(True)``;
    a repr-based hash does not, so integral floats and bools are folded
    to ``int`` — a lookup key ``(1.0,)`` keeps finding state routed for
    ``(1,)``, exactly as before.
    """
    if value is True or value is False:
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def stable_hash(key: Sequence[Any]) -> int:
    """A deterministic, ``PYTHONHASHSEED``-independent hash of a key tuple.

    CRC-32 of the UTF-8 ``repr`` of the canonicalized value tuple.  Keys
    are routing attributes / summary keys — small tuples of domain values
    (ints, floats, strings, bools, None) whose ``repr`` is deterministic.
    """
    return zlib.crc32(repr(tuple(_canonical(v) for v in key)).encode("utf-8"))


class ShardRouter:
    """Routes records and summary keys for one partition key class.

    Parameters
    ----------
    spec:
        The partition declaration shared by every view of this key
        class (views with *equal* specs route identically and may share
        shard state; views with different specs must not).
    shards:
        Number of worker shards.
    """

    __slots__ = ("spec", "shards", "_positions")

    def __init__(self, spec: PartitionSpec, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.spec = spec
        self.shards = shards
        #: chronicle name -> value positions of the routing attributes.
        self._positions: Dict[str, Tuple[int, ...]] = {}

    def bind(self, chronicle: Chronicle) -> None:
        """Precompute the routing-attribute positions for *chronicle*."""
        attrs = self.spec.keys[chronicle.name]
        self._positions[chronicle.name] = chronicle.schema.positions(attrs)

    def shard_of_key(self, key: Sequence[Any]) -> int:
        """The shard owning the view row at a summary *key*."""
        return stable_hash(key) % self.shards

    def shard_of_row(self, chronicle_name: str, row: Row) -> int:
        """The shard a stamped record belongs to."""
        positions = self._positions[chronicle_name]
        values = row.values
        return stable_hash(tuple(values[p] for p in positions)) % self.shards

    def route(
        self, chronicle_name: str, rows: Sequence[Row]
    ) -> Dict[int, List[Row]]:
        """Partition stamped *rows* by owning shard (order-preserving)."""
        positions = self._positions[chronicle_name]
        shards = self.shards
        out: Dict[int, List[Row]] = {}
        for row in rows:
            values = row.values
            index = stable_hash(tuple(values[p] for p in positions)) % shards
            bucket = out.get(index)
            if bucket is None:
                bucket = out[index] = []
            bucket.append(row)
        return out

    def __repr__(self) -> str:
        return f"ShardRouter({self.spec!r}, shards={self.shards})"
