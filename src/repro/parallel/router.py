"""Hash-routing of transaction records to worker shards.

A :class:`~repro.algebra.plan.PartitionSpec` proves that every record of
a chronicle can only ever touch view rows whose summary key copies the
record's *routing attributes* (copy lineage, see
:func:`~repro.algebra.plan.infer_partition`).  The router turns that
proof into placement: hash the routing-attribute tuple, take it modulo
the shard count, and both the record and every view key it can produce
land on the same shard.  A summary-key lookup hashes the key values
themselves — the same tuple — to find the owning shard without touching
the others.

Hashing uses Python's built-in ``hash`` of the value tuple: stable
within a process, which is all the sharded engine needs (shard state is
rebuilt from the serial admission stream, never persisted; see
``ShardedDatabase.checkpoint``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..algebra.plan import PartitionSpec
from ..core.chronicle import Chronicle
from ..relational.tuples import Row


class ShardRouter:
    """Routes records and summary keys for one partition key class.

    Parameters
    ----------
    spec:
        The partition declaration shared by every view of this key
        class (views with *equal* specs route identically and may share
        shard state; views with different specs must not).
    shards:
        Number of worker shards.
    """

    __slots__ = ("spec", "shards", "_positions")

    def __init__(self, spec: PartitionSpec, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.spec = spec
        self.shards = shards
        #: chronicle name -> value positions of the routing attributes.
        self._positions: Dict[str, Tuple[int, ...]] = {}

    def bind(self, chronicle: Chronicle) -> None:
        """Precompute the routing-attribute positions for *chronicle*."""
        attrs = self.spec.keys[chronicle.name]
        self._positions[chronicle.name] = chronicle.schema.positions(attrs)

    def shard_of_key(self, key: Sequence[Any]) -> int:
        """The shard owning the view row at a summary *key*."""
        return hash(tuple(key)) % self.shards

    def shard_of_row(self, chronicle_name: str, row: Row) -> int:
        """The shard a stamped record belongs to."""
        positions = self._positions[chronicle_name]
        values = row.values
        return hash(tuple(values[p] for p in positions)) % self.shards

    def route(
        self, chronicle_name: str, rows: Sequence[Row]
    ) -> Dict[int, List[Row]]:
        """Partition stamped *rows* by owning shard (order-preserving)."""
        positions = self._positions[chronicle_name]
        shards = self.shards
        out: Dict[int, List[Row]] = {}
        for row in rows:
            values = row.values
            index = hash(tuple(values[p] for p in positions)) % shards
            bucket = out.get(index)
            if bucket is None:
                bucket = out[index] = []
            bucket.append(row)
        return out

    def __repr__(self) -> str:
        return f"ShardRouter({self.spec!r}, shards={self.shards})"
