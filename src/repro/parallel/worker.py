"""The worker-process half of the ``process`` shard executor.

A worker process holds a :class:`UnitReplica` per shard label it was
assigned: mirror chronicles (``retention=0``) rebuilt from portable
schema specs, plus a private :class:`~repro.views.registry.ViewRegistry`
of views rebuilt from portable summary specs
(:func:`~repro.algebra.plan.summary_spec`) and seeded from the parent's
fold-state snapshot.  The replica is a faithful reconstruction of the
parent-side :class:`~repro.parallel.engine.ShardUnit` — same registry
settings (no prefilter, compile as configured), same coalesced
``ingest_stamped`` maintenance path — so the per-window fold it computes
is exactly what the thread executor would compute in place.

The cross-process contract is byte-minimal in both directions:

* **down** — one installed spec per shard (amortized over its lifetime),
  then per window only ``{chronicle: [value tuples]}`` plus the
  watermark: rows were validated at admission, so workers rebuild them
  with the unchecked constructor;
* **up** — per window, only the ``(key, state)`` pairs the window
  actually touched per view (the χ-delta's summary keys), from which the
  parent regenerates visible rows via
  :meth:`~repro.sca.view.PersistentView.absorb_states`.  View state
  never crosses whole.

Workers run without observability installed (spawned processes never
inherit the parent's runtime); the parent emits linked spans and gauges
from the timings each window returns.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..algebra.plan import build_schema, build_summary
from ..core.chronicle import Chronicle
from ..core.group import ChronicleGroup
from ..core.sequence import SequenceNumber
from ..relational.tuples import Row
from ..sca.view import PersistentView
from ..views.registry import ViewRegistry

#: ``(chronicle name, schema_spec)`` pairs.
ChronicleSpecs = Tuple[Tuple[str, Tuple[Any, ...]], ...]
#: ``(view name, summary_spec, state items)`` triples.
ViewSpecs = Tuple[Tuple[str, Tuple[Any, ...], List[Tuple[Any, Any]]], ...]
#: One window's payload: chronicle name -> stamped value tuples.
WindowValues = Mapping[str, Sequence[Tuple[Any, ...]]]


class ShardUnitSpec:
    """Everything a worker needs to rebuild one shard unit.

    Built by :meth:`~repro.parallel.engine.ShardUnit.spec` under the
    unit's lock; a plain attribute bag so it pickles by default.
    """

    def __init__(
        self,
        label: str,
        compile_plans: bool,
        chronicles: ChronicleSpecs,
        views: ViewSpecs,
        watermark: SequenceNumber,
    ) -> None:
        self.label = label
        self.compile_plans = compile_plans
        self.chronicles = chronicles
        self.views = views
        self.watermark = watermark

    def __repr__(self) -> str:
        return (
            f"ShardUnitSpec({self.label!r}, chronicles={len(self.chronicles)}, "
            f"views={len(self.views)}, watermark={self.watermark})"
        )


class _RecordingView(PersistentView):
    """A persistent view that records the summary keys each fold touches.

    The recorded keys are exactly the view rows a window changed — the
    compact delta summary the worker sends back instead of its whole
    partition.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.touched: set = set()

    def _fold(self, delta: Any) -> int:
        if not delta.is_empty:
            key_of = self.summary.key_of
            self.touched.update(key_of(row) for row in delta.rows)
        return super()._fold(delta)


class UnitReplica:
    """A worker-process reconstruction of one parent-side shard unit."""

    def __init__(self, spec: ShardUnitSpec) -> None:
        self.label = spec.label
        self.group = ChronicleGroup(f"{spec.label}::replica", start=spec.watermark + 1)
        self.registry = ViewRegistry(prefilter=False, compile=spec.compile_plans)
        self.group.subscribe(self.registry.on_event)
        self.watermark: SequenceNumber = spec.watermark
        self.ensure_chronicles(spec.chronicles)
        self.views: Dict[str, _RecordingView] = {}
        for name, summary_sp, state_items in spec.views:
            self.add_view(name, summary_sp, state_items)

    def ensure_chronicles(self, chronicles: ChronicleSpecs) -> None:
        """Adopt mirrors for any chronicle specs not yet present."""
        for name, schema_sp in chronicles:
            if name not in self.group.chronicles:
                self.group.adopt(Chronicle(name, build_schema(schema_sp), retention=0))

    def add_view(
        self,
        name: str,
        summary_sp: Tuple[Any, ...],
        state_items: List[Tuple[Any, Any]],
    ) -> None:
        summary = build_summary(summary_sp, self.group.chronicles)
        view = _RecordingView(name, summary)
        view.state_import(state_items)
        self.registry.register(view)
        self.views[name] = view

    def remove_view(self, name: str) -> None:
        self.registry.unregister(name)
        del self.views[name]

    def apply(
        self, window: WindowValues, watermark: SequenceNumber
    ) -> Tuple[Dict[str, List[Tuple[Any, Any]]], int, float, Dict[str, Any]]:
        """Absorb one coalesced maintenance window.

        Returns ``(per-view touched state items, records, elapsed
        seconds, cumulative registry stats)``.
        """
        started = time.perf_counter()
        unchecked = Row.unchecked
        event: Dict[str, Tuple[Row, ...]] = {}
        records = 0
        for name, values in window.items():
            schema = self.group[name].schema
            rows = tuple(unchecked(schema, tuple(v)) for v in values)
            event[name] = rows
            records += len(rows)
        for view in self.views.values():
            view.touched.clear()
        self.group.ingest_stamped(event, watermark)
        self.watermark = watermark
        # Report every *candidate* view (its chronicles were touched —
        # exactly the views the registry maintained this window), even
        # with an empty item list: the parent counts a maintenance
        # window per reported view, matching the thread executor.
        touched_names = set(event)
        out: Dict[str, List[Tuple[Any, Any]]] = {}
        for name, view in self.views.items():
            if touched_names.isdisjoint(view.chronicle_names()):
                continue
            state = view._state
            out[name] = [(key, state.get(key)) for key in view.touched]
        elapsed = time.perf_counter() - started
        return out, records, elapsed, self.registry.stats


#: label -> replica, module-global in each worker process.
_REPLICAS: Dict[str, UnitReplica] = {}


def worker_install(spec: ShardUnitSpec) -> str:
    """(Re)build the replica for one shard label; returns the label."""
    _REPLICAS[spec.label] = UnitReplica(spec)
    return spec.label


def worker_add_view(
    label: str,
    name: str,
    summary_sp: Tuple[Any, ...],
    state_items: List[Tuple[Any, Any]],
    chronicles: ChronicleSpecs,
) -> None:
    replica = _REPLICAS[label]
    replica.ensure_chronicles(chronicles)
    replica.add_view(name, summary_sp, state_items)


def worker_remove_view(label: str, name: str) -> None:
    _REPLICAS[label].remove_view(name)


def worker_apply(
    label: str, window: WindowValues, watermark: SequenceNumber
) -> Tuple[Dict[str, List[Tuple[Any, Any]]], int, float, Dict[str, Any]]:
    return _REPLICAS[label].apply(window, watermark)
