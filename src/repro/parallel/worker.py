"""The worker-process half of the ``process`` shard executor.

A worker process holds a :class:`UnitReplica` per shard label it was
assigned: mirror chronicles (``retention=0``) rebuilt from portable
schema specs, plus a private :class:`~repro.views.registry.ViewRegistry`
of views rebuilt from portable summary specs
(:func:`~repro.algebra.plan.summary_spec`) and seeded from the parent's
fold-state snapshot.  The replica is a faithful reconstruction of the
parent-side :class:`~repro.parallel.engine.ShardUnit` — same registry
settings (no prefilter, compile as configured), same coalesced
``ingest_stamped`` maintenance path — so the per-window fold it computes
is exactly what the thread executor would compute in place.

The cross-process contract is byte-minimal in both directions:

* **down** — one installed spec per shard (amortized over its lifetime),
  then per window only ``{chronicle: [value tuples]}`` plus the
  watermark: rows were validated at admission, so workers rebuild them
  with the unchecked constructor;
* **up** — per window, only the ``(key, state)`` pairs the window
  actually touched per view (the χ-delta's summary keys), from which the
  parent regenerates visible rows via
  :meth:`~repro.sca.view.PersistentView.absorb_states`.  View state
  never crosses whole.

**The telemetry relay.**  Spawned workers never inherit the parent's
observability runtime, so when the parent has observability installed
(and ``DatabaseConfig.relay_telemetry`` is on) each window additionally
travels through :func:`worker_apply_relay`: the parent pre-pickles the
window itself (timing the encode, counting the bytes), and the worker

* installs a process-local capture handle
  (:class:`~repro.obs.core.Observability`, no operator spans, audit
  off) for exactly the window's extent, so the ordinary hooks record a
  ``window_apply`` → ``append`` → per-view ``maintain`` span tree with
  :class:`~repro.complexity.counters.CostCounters` diffs;
* compacts the captured spans (:meth:`~repro.obs.tracer.Span
  .to_record`) and drains its metrics registry as per-window deltas
  (:meth:`~repro.obs.metrics.MetricsRegistry.to_deltas`), both **capped**
  (:data:`RELAY_MAX_SPANS` / :data:`RELAY_MAX_SERIES`) with drop
  counters — telemetry is bounded by catalog size, never by window
  size, and degrades by dropping, never by blocking;
* returns them in a :class:`WindowTelemetry` piggybacked on the same
  result tuple — no second channel — together with its decode/encode
  wall times and resource readings (max RSS, CPU seconds).

The parent grafts the spans under its ``shard_apply`` span
(:meth:`~repro.obs.tracer.Tracer.graft` — so worker-side ``maintain``
spans share the producing ingest's ``trace_id``), merges the metric
deltas with ``shard``/``worker`` labels, and turns the byte/time
readings into the ``ipc_*`` accounting series.  With observability off
the relay never engages: windows go through :func:`worker_apply` and the
cross-process payload is byte-identical to the minimal contract above.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - unix-only module
    import resource as _resource
except ImportError:  # pragma: no cover - windows
    _resource = None  # type: ignore[assignment]

from ..algebra.plan import build_schema, build_summary
from ..core.chronicle import Chronicle
from ..core.group import ChronicleGroup
from ..core.sequence import SequenceNumber
from ..relational.tuples import Row
from ..sca.view import PersistentView
from ..views.registry import ViewRegistry

#: Most span records relayed per window (the whole compacted tree);
#: spans beyond the cap are dropped and counted, deepest-first.
RELAY_MAX_SPANS = 128

#: Most metric series relayed per window (bounded by label cardinality,
#: which is bounded by catalog size — the cap is a pressure valve).
RELAY_MAX_SERIES = 256

#: ``(chronicle name, schema_spec)`` pairs.
ChronicleSpecs = Tuple[Tuple[str, Tuple[Any, ...]], ...]
#: ``(view name, summary_spec, state items)`` triples.
ViewSpecs = Tuple[Tuple[str, Tuple[Any, ...], List[Tuple[Any, Any]]], ...]
#: One window's payload: chronicle name -> stamped value tuples.
WindowValues = Mapping[str, Sequence[Tuple[Any, ...]]]


class ShardUnitSpec:
    """Everything a worker needs to rebuild one shard unit.

    Built by :meth:`~repro.parallel.engine.ShardUnit.spec` under the
    unit's lock; a plain attribute bag so it pickles by default.
    """

    def __init__(
        self,
        label: str,
        compile_plans: bool,
        chronicles: ChronicleSpecs,
        views: ViewSpecs,
        watermark: SequenceNumber,
    ) -> None:
        self.label = label
        self.compile_plans = compile_plans
        self.chronicles = chronicles
        self.views = views
        self.watermark = watermark

    def __repr__(self) -> str:
        return (
            f"ShardUnitSpec({self.label!r}, chronicles={len(self.chronicles)}, "
            f"views={len(self.views)}, watermark={self.watermark})"
        )


class WindowTelemetry:
    """One window's worker-side telemetry, piggybacked on the result.

    A plain attribute bag (pickles by default), deliberately bounded:
    *spans* holds at most :data:`RELAY_MAX_SPANS` compact records and
    *metrics* at most :data:`RELAY_MAX_SERIES` delta series; anything
    beyond is dropped and counted in the ``*_dropped`` fields, which the
    parent surfaces as ``relay_spans_dropped_total`` /
    ``relay_series_dropped_total``.
    """

    def __init__(
        self,
        spans: List[Dict[str, Any]],
        spans_dropped: int,
        metrics: List[Tuple[str, str, Any, Any]],
        metrics_dropped: int,
        maxrss_bytes: int,
        cpu_seconds: float,
    ) -> None:
        self.spans = spans
        self.spans_dropped = spans_dropped
        self.metrics = metrics
        self.metrics_dropped = metrics_dropped
        self.maxrss_bytes = maxrss_bytes
        self.cpu_seconds = cpu_seconds

    def __repr__(self) -> str:
        return (
            f"WindowTelemetry(spans={len(self.spans)}"
            f"{f'+{self.spans_dropped} dropped' if self.spans_dropped else ''}, "
            f"series={len(self.metrics)}, rss={self.maxrss_bytes})"
        )


def _rusage() -> Tuple[int, float]:
    """(max RSS bytes, CPU seconds) of this worker process, best effort."""
    if _resource is None:
        return 0, 0.0
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    # ru_maxrss is kilobytes on Linux, bytes on macOS; normalize to bytes
    # by assuming the (vastly more common) kilobyte convention except
    # where the value is already implausibly large for kilobytes.
    maxrss = int(usage.ru_maxrss)
    if maxrss and maxrss < 1 << 34:
        maxrss *= 1024
    return maxrss, float(usage.ru_utime + usage.ru_stime)


def _compact_spans(
    roots: Sequence[Any], cap: int = RELAY_MAX_SPANS
) -> Tuple[List[Dict[str, Any]], int]:
    """Compact finished root spans into bounded relay records.

    The span *count* (whole tree, depth-first) is what the cap bounds;
    once reached, remaining subtrees are dropped and counted — the
    shallow structure (window → append → first views) survives pressure,
    the deep tail goes first.
    """
    budget = cap
    dropped = 0

    def take(span: Any) -> Optional[Dict[str, Any]]:
        nonlocal budget, dropped
        if budget <= 0:
            dropped += sum(1 for _ in span.walk())
            return None
        budget -= 1
        record: Dict[str, Any] = {
            "name": span.name,
            "started_at": span.started_at,
            "duration": span.duration,
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        if span.counters:
            record["counters"] = dict(span.counters)
        children = []
        for child in span.children:
            taken = take(child)
            if taken is not None:
                children.append(taken)
        if children:
            record["children"] = children
        return record

    out = []
    for root in roots:
        record = take(root)
        if record is not None:
            out.append(record)
    return out, dropped


class _TelemetryCapture:
    """The worker process's private observability handle.

    Built lazily on the first relayed window (plain :func:`worker_apply`
    windows never pay for it): tracing on, operator spans off (the
    deepest layer would dominate the relay budget for no routing value),
    auditor off (the parent's auditor already saw this view class; a
    worker-side raise could not propagate usefully anyway).  The handle
    is installed into the worker's runtime slot only for a window's
    extent and reset between windows, so its registry accumulates
    exactly one window's deltas at a time.
    """

    def __init__(self) -> None:
        from ..obs.core import Observability

        self.obs = Observability(trace=True, trace_operators=False, audit="off")

    def run(self, replica: "UnitReplica", window: WindowValues, watermark: SequenceNumber):
        from ..obs import runtime as obs_runtime

        obs = self.obs
        obs.metrics.reset()
        obs.tracer.clear()
        with obs_runtime.installed(obs):
            with obs.tracer.span(
                "window_apply", shard=replica.label, watermark=watermark
            ):
                result = replica.apply(window, watermark)
        spans, spans_dropped = _compact_spans(obs.tracer.traces())
        deltas = obs.metrics.to_deltas()
        metrics_dropped = max(0, len(deltas) - RELAY_MAX_SERIES)
        maxrss, cpu_seconds = _rusage()
        telemetry = WindowTelemetry(
            spans,
            spans_dropped,
            deltas[:RELAY_MAX_SERIES],
            metrics_dropped,
            maxrss,
            cpu_seconds,
        )
        return result + (telemetry,)


#: The worker's lazily-built capture handle (None until first relay).
_CAPTURE: Optional[_TelemetryCapture] = None


def _capture() -> _TelemetryCapture:
    global _CAPTURE
    if _CAPTURE is None:
        _CAPTURE = _TelemetryCapture()
    return _CAPTURE


class _RecordingView(PersistentView):
    """A persistent view that records the summary keys each fold touches.

    The recorded keys are exactly the view rows a window changed — the
    compact delta summary the worker sends back instead of its whole
    partition.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.touched: set = set()

    def _fold(self, delta: Any) -> int:
        if not delta.is_empty:
            key_of = self.summary.key_of
            self.touched.update(key_of(row) for row in delta.rows)
        return super()._fold(delta)


class UnitReplica:
    """A worker-process reconstruction of one parent-side shard unit."""

    def __init__(self, spec: ShardUnitSpec) -> None:
        self.label = spec.label
        self.group = ChronicleGroup(f"{spec.label}::replica", start=spec.watermark + 1)
        self.registry = ViewRegistry(prefilter=False, compile=spec.compile_plans)
        self.group.subscribe(self.registry.on_event)
        self.watermark: SequenceNumber = spec.watermark
        self.ensure_chronicles(spec.chronicles)
        self.views: Dict[str, _RecordingView] = {}
        for name, summary_sp, state_items in spec.views:
            self.add_view(name, summary_sp, state_items)

    def ensure_chronicles(self, chronicles: ChronicleSpecs) -> None:
        """Adopt mirrors for any chronicle specs not yet present."""
        for name, schema_sp in chronicles:
            if name not in self.group.chronicles:
                self.group.adopt(Chronicle(name, build_schema(schema_sp), retention=0))

    def add_view(
        self,
        name: str,
        summary_sp: Tuple[Any, ...],
        state_items: List[Tuple[Any, Any]],
    ) -> None:
        summary = build_summary(summary_sp, self.group.chronicles)
        view = _RecordingView(name, summary)
        view.state_import(state_items)
        self.registry.register(view)
        self.views[name] = view

    def remove_view(self, name: str) -> None:
        self.registry.unregister(name)
        del self.views[name]

    def apply(
        self, window: WindowValues, watermark: SequenceNumber
    ) -> Tuple[Dict[str, List[Tuple[Any, Any]]], int, float, Dict[str, Any]]:
        """Absorb one coalesced maintenance window.

        Returns ``(per-view touched state items, records, elapsed
        seconds, cumulative registry stats)``.
        """
        started = time.perf_counter()
        unchecked = Row.unchecked
        event: Dict[str, Tuple[Row, ...]] = {}
        records = 0
        for name, values in window.items():
            schema = self.group[name].schema
            rows = tuple(unchecked(schema, tuple(v)) for v in values)
            event[name] = rows
            records += len(rows)
        for view in self.views.values():
            view.touched.clear()
        self.group.ingest_stamped(event, watermark)
        self.watermark = watermark
        # Report every *candidate* view (its chronicles were touched —
        # exactly the views the registry maintained this window), even
        # with an empty item list: the parent counts a maintenance
        # window per reported view, matching the thread executor.
        touched_names = set(event)
        out: Dict[str, List[Tuple[Any, Any]]] = {}
        for name, view in self.views.items():
            if touched_names.isdisjoint(view.chronicle_names()):
                continue
            state = view._state
            out[name] = [(key, state.get(key)) for key in view.touched]
        elapsed = time.perf_counter() - started
        return out, records, elapsed, self.registry.stats


#: label -> replica, module-global in each worker process.
_REPLICAS: Dict[str, UnitReplica] = {}


def worker_install(spec: ShardUnitSpec) -> str:
    """(Re)build the replica for one shard label; returns the label."""
    _REPLICAS[spec.label] = UnitReplica(spec)
    return spec.label


def worker_add_view(
    label: str,
    name: str,
    summary_sp: Tuple[Any, ...],
    state_items: List[Tuple[Any, Any]],
    chronicles: ChronicleSpecs,
) -> None:
    replica = _REPLICAS[label]
    replica.ensure_chronicles(chronicles)
    replica.add_view(name, summary_sp, state_items)


def worker_remove_view(label: str, name: str) -> None:
    _REPLICAS[label].remove_view(name)


def worker_apply(
    label: str, window: WindowValues, watermark: SequenceNumber
) -> Tuple[Dict[str, List[Tuple[Any, Any]]], int, float, Dict[str, Any]]:
    return _REPLICAS[label].apply(window, watermark)


def worker_apply_relay(label: str, blob: bytes) -> Tuple[bytes, float, float]:
    """Telemetry-relaying variant of :func:`worker_apply`.

    The parent sends the ``(window, watermark)`` pair pre-pickled so the
    decode here (and the result encode) can be *timed* — that wall time
    is the worker-side half of the IPC cost the parent accounts under
    ``ipc_decode_seconds``/``ipc_encode_seconds``.  Returns
    ``(result blob, decode seconds, encode seconds)`` where the blob
    pickles the 5-tuple ``(touched state items, records, elapsed,
    registry stats, WindowTelemetry)``.
    """
    t0 = time.perf_counter()
    window, watermark = pickle.loads(blob)
    decode_seconds = time.perf_counter() - t0
    payload = _capture().run(_REPLICAS[label], window, watermark)
    t0 = time.perf_counter()
    result = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    encode_seconds = time.perf_counter() - t0
    return result, decode_seconds, encode_seconds
