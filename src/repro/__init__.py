"""repro — the chronicle data model (PODS 1995), reproduced in Python.

A chronicle database records unbounded append-only transaction streams
(*chronicles*) and answers summary queries from declaratively defined
*persistent views*, maintained incrementally on every append in time
independent of the stream's length — without storing the stream at all.

Quickstart::

    from repro import ChronicleDatabase

    db = ChronicleDatabase()
    db.create_chronicle("calls", [("caller", "INT"), ("minutes", "INT")])
    db.define_view(
        "DEFINE VIEW usage AS "
        "SELECT caller, SUM(minutes) AS total FROM calls GROUP BY caller"
    )
    db.append("calls", {"caller": 5551234, "minutes": 12})
    db.view_value("usage", (5551234,), "total")   # -> 12

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every formal claim in the paper.
"""

from . import errors
from .aggregates import AVG, COUNT, FIRST, LAST, MAX, MIN, STDEV, SUM, VAR, AggregateSpec, spec
from .algebra import IMClass, Language, classify, scan
from .core import Chronicle, ChronicleGroup, Delta, chronicle_schema
from .core.config import DatabaseConfig, DurabilityConfig
from .core.database import ChronicleDatabase
from .obs import MetricsRegistry, Observability, Tracer
from .workloads import (
    BankingWorkload,
    CreditCardWorkload,
    FrequentFlyerWorkload,
    SensorWorkload,
    StockWorkload,
    TelecomWorkload,
    Workload,
    ZipfChooser,
)
from .relational import (
    Attribute,
    Relation,
    Row,
    Schema,
    VersionedRelation,
    attr_cmp,
    attr_eq,
    attrs_cmp,
)
from .sca import GroupBySummary, PersistentView, ProjectSummary, evaluate_summary
from .views import (
    IncrementalTieredComputation,
    KeyedMovingWindow,
    MovingWindowAggregate,
    PeriodicViewSet,
    TierSchedule,
    ViewQuery,
    monthly,
    sliding,
    top_k,
)

__version__ = "1.0.0"

__all__ = [
    # The facade: the database, its configuration, the engines' shared API.
    "ChronicleDatabase",
    "DatabaseConfig",
    "DurabilityConfig",
    "Chronicle",
    "ChronicleGroup",
    "chronicle_schema",
    "Delta",
    "Schema",
    "Attribute",
    "Row",
    "Relation",
    "VersionedRelation",
    "attr_eq",
    "attr_cmp",
    "attrs_cmp",
    "scan",
    "classify",
    "Language",
    "IMClass",
    "GroupBySummary",
    "ProjectSummary",
    "PersistentView",
    "evaluate_summary",
    "AggregateSpec",
    "spec",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "VAR",
    "STDEV",
    "FIRST",
    "LAST",
    "PeriodicViewSet",
    "monthly",
    "sliding",
    "MovingWindowAggregate",
    "KeyedMovingWindow",
    "TierSchedule",
    "IncrementalTieredComputation",
    "ViewQuery",
    "top_k",
    # Observability handles.
    "Observability",
    "MetricsRegistry",
    "Tracer",
    # Workload entry points (the paper's application domains).
    "Workload",
    "ZipfChooser",
    "TelecomWorkload",
    "BankingWorkload",
    "CreditCardWorkload",
    "FrequentFlyerWorkload",
    "StockWorkload",
    "SensorWorkload",
    "errors",
    "__version__",
]
